// Classic libpcap-format file I/O for packet traces.
//
// Traces are written as truncated captures (headers only, like
// `tcpdump -s 54`): Ethernet + IPv4 + TCP headers with the payload length
// reflected in the original-length field. Simulation metadata is packed
// into legitimate header fields so a round trip preserves the analysis
// inputs:
//   - direction        -> IP addresses (server 10.0.0.1 <-> client 192.168.1.2)
//   - connection id    -> client TCP port (10000 + id)
//   - retransmission   -> IP identification field (1 = retransmission)
//   - receive window   -> TCP window, scaled by 2^7 as if a window-scale
//                         option had been negotiated (values round down to a
//                         multiple of 128; zero stays zero)
//
// Reading rides `MmapPcapReader` (pcap_reader.hpp): zero-copy mapped
// records, all four pcap magics (µs/ns, native/byte-swapped), diagnostic
// errors on truncated or corrupt files. The templated `for_each_pcap_record`
// overload below inlines its visitor into the record loop; the
// `std::function` overload is a thin wrapper kept for ABI-stable callers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "capture/pcap_reader.hpp"
#include "capture/pcap_wire.hpp"
#include "capture/trace.hpp"

namespace vstream::capture {

/// TCP window scale applied when writing (as if WS=7 was negotiated).
inline constexpr unsigned kPcapWindowShift = wire::kWindowShift;

/// Streaming pcap writer: global header on construction, one record per
/// `add`, no trace materialisation — a multi-GB synthetic capture streams
/// straight to disk in O(1) memory. Throws on I/O failure.
class PcapWriter {
 public:
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  /// Append one record (must be fed in capture-time order for the readers'
  /// gap analyses to make sense; the writer itself does not reorder).
  void add(const PacketRecord& record);

  /// Flush and close; throws if the stream failed. The destructor closes
  /// without throwing for writers that already called close().
  void close();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::string path_;
  std::uint64_t records_{0};
};

/// Serialise the trace to `path` in pcap format. Throws on I/O failure.
void write_pcap(const PacketTrace& trace, const std::string& path);

/// Parse a pcap file written by `write_pcap` (or any capture of TCP over
/// IPv4 over Ethernet). Label and encoding-rate metadata are not part of
/// the format and are left for the caller to fill.
[[nodiscard]] PacketTrace read_pcap(const std::string& path);

/// Stream every record of a pcap file to `fn` in file order without
/// materialising a trace — same parsing and unwrapping as `read_pcap`,
/// O(1) memory in the capture length. The visitor is a template parameter:
/// the record loop inlines it, with no per-record `std::function` dispatch
/// or allocation. Throws on I/O/format errors.
template <typename Fn>
void for_each_pcap_record(const std::string& path, Fn&& fn) {
  const MmapPcapReader reader{path};
  SeqUnwrapMap unwrap;
  PacketRecord record;
  reader.for_each([&](const PcapRecordView& view) {
    if (decode_record(
            view,
            [&unwrap](std::uint64_t conn, int dir, tcp::WireSeq w) {
              return unwrap.unwrap(conn, dir, w);
            },
            record)) {
      fn(std::as_const(record));
    }
  });
}

/// ABI-stable overload for callers that hold the visitor as a
/// `std::function` (one dispatch per record; prefer the template above on
/// hot paths).
void for_each_pcap_record(const std::string& path,
                          const std::function<void(const PacketRecord&)>& fn);

}  // namespace vstream::capture
