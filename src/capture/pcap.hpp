// Classic libpcap-format file I/O for packet traces.
//
// Traces are written as truncated captures (headers only, like
// `tcpdump -s 54`): Ethernet + IPv4 + TCP headers with the payload length
// reflected in the original-length field. Simulation metadata is packed
// into legitimate header fields so a round trip preserves the analysis
// inputs:
//   - direction        -> IP addresses (server 10.0.0.1 <-> client 192.168.1.2)
//   - connection id    -> client TCP port (10000 + id)
//   - retransmission   -> IP identification field (1 = retransmission)
//   - receive window   -> TCP window, scaled by 2^7 as if a window-scale
//                         option had been negotiated (values round down to a
//                         multiple of 128; zero stays zero)
#pragma once

#include <functional>
#include <string>

#include "capture/trace.hpp"

namespace vstream::capture {

/// TCP window scale applied when writing (as if WS=7 was negotiated).
inline constexpr unsigned kPcapWindowShift = 7;

/// Serialise the trace to `path` in pcap format. Throws on I/O failure.
void write_pcap(const PacketTrace& trace, const std::string& path);

/// Parse a pcap file written by `write_pcap` (or any capture of TCP over
/// IPv4 over Ethernet). Label and encoding-rate metadata are not part of
/// the format and are left for the caller to fill.
[[nodiscard]] PacketTrace read_pcap(const std::string& path);

/// Stream every record of a pcap file to `fn` in file order without
/// materialising a trace — same parsing and unwrapping as `read_pcap`,
/// O(1) memory in the capture length. Throws on I/O/format errors.
void for_each_pcap_record(const std::string& path,
                          const std::function<void(const PacketRecord&)>& fn);

}  // namespace vstream::capture
