#include "capture/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace vstream::capture {

void write_packets_csv(const PacketTrace& trace, std::ostream& out) {
  out << "t_s,direction,connection,seq,ack,payload_bytes,window_bytes,flags,retransmission\n";
  for (const auto& p : trace.packets) {
    net::TcpSegment s;
    s.flags = p.flags;
    out << p.t_s << ',' << (p.direction == net::Direction::kDown ? "down" : "up") << ','
        << p.connection_id << ',' << p.seq << ',' << p.ack << ',' << p.payload_bytes << ','
        << p.window_bytes << ',' << s.flag_string() << ',' << (p.is_retransmission ? 1 : 0)
        << '\n';
  }
}

void write_packets_csv(const PacketTrace& trace, const std::string& path) {
  std::ofstream out{path, std::ios::trunc};
  if (!out) throw std::runtime_error{"write_packets_csv: cannot open " + path};
  write_packets_csv(trace, out);
}

void write_download_curve_csv(const PacketTrace& trace, std::ostream& out) {
  out << "t_s,bytes\n";
  for (const auto& pt : trace.download_curve()) out << pt.t_s << ',' << pt.bytes << '\n';
}

void write_window_series_csv(const PacketTrace& trace, std::ostream& out) {
  out << "t_s,window_bytes\n";
  for (const auto& pt : trace.receive_window_series()) {
    out << pt.t_s << ',' << pt.window_bytes << '\n';
  }
}

}  // namespace vstream::capture
