#include "capture/synthetic.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>
#include <vector>

#include "capture/pcap.hpp"
#include "capture/pcap_wire.hpp"
#include "check/contracts.hpp"

namespace vstream::capture {
namespace {

/// One connection's packet script: a small state machine that emits records
/// at strictly increasing times. Pending records (a data packet and the ACK
/// it triggers) queue in emit order so the merge only ever sees the head.
class ConnectionScript {
 public:
  ConnectionScript(std::uint64_t id, const SyntheticCaptureOptions& options)
      : options_{options}, id_{id} {
    const std::uint64_t mod3 = id % 3;
    strategy_block_bytes_ = mod3 == 1   ? options.short_block_bytes
                            : mod3 == 2 ? options.long_block_bytes
                                        : 0;  // 0 = bulk, never pauses
    off_gap_s_ = mod3 == 1 ? options.short_off_gap_s : options.long_off_gap_s;
    zero_window_blocks_ = mod3 == 1;
    burst_blocks_ = id % 6 == 5;
    rtt_s_ = 0.02 + 0.01 * static_cast<double>(id % 4);
    t_ = options.start_spacing_s * static_cast<double>(id - 1);
    data_dt_s_ = static_cast<double>(options.payload_bytes) * 8.0 / options.down_rate_bps;
    burst_dt_s_ = 20e-6;
    queue_handshake();
  }

  /// Pop the next record; false once this connection is exhausted for the
  /// current pull (more data is queued lazily, so false never happens here —
  /// the generator stops by total record budget, not per connection).
  const PacketRecord& peek() {
    if (pending_.empty()) queue_next_cycle_step();
    return pending_.front();
  }

  void pop() { pending_.pop_front(); }

 private:
  PacketRecord base(double t, net::Direction direction) const {
    PacketRecord r;
    r.t_s = t;
    r.direction = direction;
    r.connection_id = id_;
    r.host = 0;
    return r;
  }

  void push_down_data(double t, std::uint32_t payload, bool retransmission) {
    PacketRecord r = base(t, net::Direction::kDown);
    r.seq = server_pos_;
    r.ack = client_pos_;
    r.payload_bytes = payload;
    r.flags = net::TcpFlag::kAck;
    r.is_retransmission = retransmission;
    if (!retransmission) server_pos_ += payload;
    pending_.push_back(r);
  }

  void push_up_ack(double t, std::uint64_t window_bytes) {
    PacketRecord r = base(t, net::Direction::kUp);
    r.seq = client_pos_;
    r.ack = server_pos_;
    r.window_bytes = window_bytes;
    r.flags = net::TcpFlag::kAck;
    pending_.push_back(r);
  }

  void queue_handshake() {
    PacketRecord syn = base(t_, net::Direction::kUp);
    syn.seq = 1;
    syn.window_bytes = 262144;  // a real SYN advertises a window; 0 would
                                // read as a zero-window episode downstream
    syn.flags = net::TcpFlag::kSyn;
    pending_.push_back(syn);

    PacketRecord synack = base(t_ + rtt_s_, net::Direction::kDown);
    synack.seq = 1;
    synack.ack = 2;
    synack.flags = net::TcpFlag::kSyn | net::TcpFlag::kAck;
    pending_.push_back(synack);

    client_pos_ = 2;
    server_pos_ = 2;
    t_ += rtt_s_ + rtt_s_ / 2.0;
    push_up_ack(t_, advertised_window());
    t_ += rtt_s_ / 2.0;
  }

  [[nodiscard]] std::uint64_t advertised_window() {
    ++ack_count_;
    return 262144 + (ack_count_ % 8U) * 65536;
  }

  /// Queue the next slice of the current ON period (or the whole gap
  /// machinery around it): a few data packets and their ACK.
  void queue_next_cycle_step() {
    const bool burst = burst_blocks_ && !buffering_;
    const double dt = burst ? burst_dt_s_ : data_dt_s_;
    for (int k = 0; k < 2; ++k) {
      const bool retransmission = data_packets_ != 0 && data_packets_ % 997 == 0;
      push_down_data(t_, options_.payload_bytes, retransmission);
      ++data_packets_;
      if (!retransmission) block_sent_ += options_.payload_bytes;
      t_ += dt;
    }
    push_up_ack(t_ - dt / 2.0, advertised_window());

    // Block boundary: bulk connections never pause; cyclers idle for the
    // OFF gap (optionally advertising a zero-window episode across it).
    if (strategy_block_bytes_ != 0 && block_sent_ >= strategy_block_bytes_) {
      block_sent_ = 0;
      buffering_ = false;
      if (zero_window_blocks_) {
        push_up_ack(t_, 0);                      // window closes...
        push_up_ack(t_ + off_gap_s_ / 2.0, advertised_window());  // ...and reopens
      }
      t_ += off_gap_s_;
    }
  }

  SyntheticCaptureOptions options_;
  std::uint64_t id_;
  std::uint64_t strategy_block_bytes_{0};
  double off_gap_s_{0.0};
  bool zero_window_blocks_{false};
  bool burst_blocks_{false};
  bool buffering_{true};  ///< first block counts as the buffering phase
  double rtt_s_{0.0};
  double t_{0.0};
  double data_dt_s_{0.0};
  double burst_dt_s_{0.0};
  std::uint64_t server_pos_{1};
  std::uint64_t client_pos_{1};
  std::uint64_t block_sent_{0};
  std::uint64_t data_packets_{0};
  std::uint64_t ack_count_{0};
  std::deque<PacketRecord> pending_;
};

}  // namespace

SyntheticCaptureSummary write_synthetic_capture(const std::string& path,
                                                const SyntheticCaptureOptions& options) {
  VSTREAM_PRECONDITION(options.connections > 0, "synthetic capture needs >= 1 connection");
  VSTREAM_PRECONDITION(options.down_rate_bps > 0.0, "synthetic capture needs a positive rate");

  constexpr std::uint64_t kDiskBytesPerRecord =
      wire::kRecordHeaderBytes + wire::kHeadersBytes;  // headers-only capture
  const std::uint64_t header_bytes = wire::kGlobalHeaderBytes;
  const std::uint64_t target_records =
      options.target_file_bytes > header_bytes
          ? (options.target_file_bytes - header_bytes) / kDiskBytesPerRecord
          : 0;

  std::vector<ConnectionScript> scripts;
  scripts.reserve(options.connections);
  for (std::size_t c = 0; c < options.connections; ++c) {
    scripts.emplace_back(static_cast<std::uint64_t>(c + 1), options);
  }

  // K-way merge on (next record time, connection index): scripts emit at
  // strictly increasing times, so the pop order — and therefore the file —
  // is fully determined by the options.
  using HeapEntry = std::pair<double, std::size_t>;
  const auto later = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.first != b.first) return a.first > b.first;  // min-heap on time
    return a.second > b.second;                        // ties: lowest index first
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(later)> heap{later};
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    heap.emplace(scripts[i].peek().t_s, i);
  }

  PcapWriter writer{path};
  SyntheticCaptureSummary summary;
  double first_t = 0.0;
  double last_t = 0.0;
  while (writer.records_written() < target_records) {
    const std::size_t index = heap.top().second;
    heap.pop();
    const PacketRecord& record = scripts[index].peek();
    if (writer.records_written() == 0) first_t = record.t_s;
    last_t = record.t_s;
    if (record.direction == net::Direction::kDown) {
      summary.down_payload_bytes += record.payload_bytes;
    }
    writer.add(record);
    scripts[index].pop();
    heap.emplace(scripts[index].peek().t_s, index);
  }
  writer.close();

  summary.records = writer.records_written();
  summary.file_bytes = header_bytes + summary.records * kDiskBytesPerRecord;
  summary.duration_s = summary.records > 0 ? last_t - first_t : 0.0;
  return summary;
}

}  // namespace vstream::capture
