// Deterministic synthetic multi-connection captures for the ingestion path.
//
// The ingestion benchmark, the `strategy_classifier --selftest/--gen` modes
// and the classifier tests all need the same thing: a large pcap whose
// per-connection ground truth is known by construction, produced in O(1)
// memory at disk speed. `write_synthetic_capture` streams a time-sorted
// merge of K independent connection scripts straight into a `PcapWriter`;
// the mix covers every Table-1 strategy plus ack-clock and zero-window
// variety so the classifier's whole row schema is exercised:
//
//   connection c (1-based id):
//     c % 3 == 1  ->  short ON-OFF cycles (256 KiB blocks, 2 s gaps),
//                     with a zero-window episode closing every block;
//     c % 3 == 2  ->  long ON-OFF cycles (4 MiB blocks, 4 s gaps);
//     c % 3 == 0  ->  bulk transfer, no steady state (paper's "no ON-OFF");
//     c % 6 == 5  ->  additionally sends each block as a back-to-back burst
//                     (no ack clock: the whole block lands inside one RTT).
//
// Everything is pure arithmetic — no RNG, no wall clock — so the same
// options always produce byte-identical files.
#pragma once

#include <cstdint>
#include <string>

namespace vstream::capture {

struct SyntheticCaptureOptions {
  std::size_t connections{6};
  /// Approximate on-disk size to generate; the writer stops at the record
  /// boundary that reaches it (each record is a fixed 70 bytes on disk).
  std::uint64_t target_file_bytes{16ULL << 20U};
  /// Down-direction goodput during ON periods.
  double down_rate_bps{8e6};
  std::uint32_t payload_bytes{1448};
  std::uint64_t short_block_bytes{256ULL * 1024U};
  std::uint64_t long_block_bytes{4ULL * 1024U * 1024U};
  double short_off_gap_s{2.0};
  double long_off_gap_s{4.0};
  /// Stagger between successive connections' handshakes.
  double start_spacing_s{0.05};
};

struct SyntheticCaptureSummary {
  std::uint64_t records{0};
  std::uint64_t file_bytes{0};
  std::uint64_t down_payload_bytes{0};
  double duration_s{0.0};
};

/// Generate the capture at `path`. Throws on I/O failure.
SyntheticCaptureSummary write_synthetic_capture(const std::string& path,
                                                const SyntheticCaptureOptions& options = {});

}  // namespace vstream::capture
