// Per-world observability context: one metrics registry plus one trace bus,
// attached to a `Simulator` (see Simulator::set_obs). Components discover it
// through their simulator reference, so instrumentation needs no extra
// plumbing through constructors, and parallel simulations each get their
// own isolated instance.
#pragma once

#include <chrono>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/periodic_timer.hpp"
#include "sim/simulator.hpp"

namespace vstream::obs {

class ObsContext {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] TraceBus& trace() { return trace_; }

 private:
  MetricsRegistry metrics_;
  TraceBus trace_;
};

/// Shorthand used by instrumented components: the simulator's context, or
/// nullptr when the world runs unobserved.
[[nodiscard]] inline ObsContext* context_of(const sim::Simulator& sim) { return sim.obs(); }

/// Samples simulator-loop health on a fixed sim-time period: events
/// processed, queue depth (current and high water) and the sim-time /
/// wall-time ratio since the previous sample. Each sample updates the
/// registry gauges `sim.events_pending_high_water` and `sim.sim_wall_ratio`
/// and, when a sink listens, emits a `SimLoopSample`.
class SimLoopMonitor {
 public:
  SimLoopMonitor(sim::Simulator& sim, sim::Duration period);

  void start();
  void stop() { timer_.stop(); }

  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  void sample();

  sim::Simulator& sim_;
  sim::PeriodicTimer timer_;
  std::chrono::steady_clock::time_point last_wall_;  // vstream-lint: allow(wall-clock): sim-vs-wall speed telemetry only
  sim::SimTime last_sim_{};
  std::uint64_t samples_{0};
};

}  // namespace vstream::obs
