// Per-world observability context: one metrics registry plus one trace bus,
// attached to a `Simulator` (see Simulator::set_obs). Components discover it
// through their simulator reference, so instrumentation needs no extra
// plumbing through constructors, and parallel simulations each get their
// own isolated instance.
#pragma once

#include <chrono>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "sim/periodic_timer.hpp"
#include "sim/simulator.hpp"

namespace vstream::obs {

class ObsContext {
 public:
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] TraceBus& trace() { return trace_; }
  [[nodiscard]] SpanTracer& spans() { return spans_; }

 private:
  MetricsRegistry metrics_;
  TraceBus trace_;
  SpanTracer spans_{trace_};
};

/// Shorthand used by instrumented components: the simulator's context, or
/// nullptr when the world runs unobserved.
[[nodiscard]] inline ObsContext* context_of(const sim::Simulator& sim) { return sim.obs(); }

/// Open an episode span on the world's tracer, or an inert handle when the
/// world runs unobserved / no sink listens. This is the instrumentation
/// entry point: two pointer loads and a branch on the cold path, mirroring
/// the point-probe design. `name` stays a C string so the no-op path never
/// allocates.
[[nodiscard]] inline Span open_span(const sim::Simulator& sim, SpanCategory category,
                                    const char* name, std::uint64_t id = 0) {
  ObsContext* obs = sim.obs();
  if (obs == nullptr || !obs->trace().active()) return Span{};
  obs->spans().bind(sim);
  return obs->spans().open(category, name, id);
}

/// Retro-emit an already-finished episode (begin at `t_begin_s`, end now);
/// no-op when unobserved. For episodes only detectable once they end.
inline void emit_span(const sim::Simulator& sim, double t_begin_s, SpanCategory category,
                      const char* name, std::uint64_t id, std::string detail) {
  ObsContext* obs = sim.obs();
  if (obs == nullptr || !obs->trace().active()) return;
  obs->spans().bind(sim);
  obs->spans().emit_complete(t_begin_s, category, name, id, std::move(detail));
}

/// Samples simulator-loop health on a fixed sim-time period: events
/// processed, queue depth (current and high water) and the sim-time /
/// wall-time ratio since the previous sample. Each sample updates the
/// registry gauges `sim.events_pending_high_water` and `sim.sim_wall_ratio`
/// and, when a sink listens, emits a `SimLoopSample`.
class SimLoopMonitor {
 public:
  SimLoopMonitor(sim::Simulator& sim, sim::Duration period);

  void start();
  void stop() { timer_.stop(); }

  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  void sample();

  sim::Simulator& sim_;
  sim::PeriodicTimer timer_;
  std::chrono::steady_clock::time_point last_wall_;  // vstream-lint: allow(wall-clock): sim-vs-wall speed telemetry only
  sim::SimTime last_sim_{};
  std::uint64_t samples_{0};
};

}  // namespace vstream::obs
