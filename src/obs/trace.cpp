#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace vstream::obs {

namespace {

void field(std::ostringstream& out, const char* key, double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  } else {
    std::snprintf(buf, sizeof buf, "null");
  }
  out << ",\"" << key << "\":" << buf;
}

void field(std::ostringstream& out, const char* key, std::uint64_t v) {
  out << ",\"" << key << "\":" << v;
}

void field(std::ostringstream& out, const char* key, const std::string& v) {
  out << ",\"" << key << "\":\"";
  for (const char c : v) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

struct JsonlWriter {
  std::ostringstream& out;

  void operator()(const TcpCwndSample& e) const {
    field(out, "t", e.t_s);
    field(out, "conn", e.connection_id);
    field(out, "endpoint", e.endpoint);
    field(out, "cwnd", e.cwnd);
    field(out, "ssthresh", e.ssthresh);
    field(out, "rwnd", e.rwnd);
    field(out, "adv_wnd", e.adv_wnd);
    field(out, "rto_s", e.rto_s);
    field(out, "in_flight", e.bytes_in_flight);
  }
  void operator()(const SimLoopSample& e) const {
    field(out, "t", e.t_s);
    field(out, "events", e.events_processed);
    field(out, "pending", e.events_pending);
    field(out, "max_pending", e.max_events_pending);
    field(out, "sim_wall_ratio", e.sim_wall_ratio);
  }
  void operator()(const PacingBlockEmitted& e) const {
    field(out, "t", e.t_s);
    field(out, "conn", e.connection_id);
    field(out, "bytes", e.bytes);
    field(out, "initial_burst", static_cast<std::uint64_t>(e.initial_burst ? 1 : 0));
  }
  void operator()(const PlayerStall& e) const {
    field(out, "t", e.t_s);
    field(out, "stalls", static_cast<std::uint64_t>(e.stall_count));
  }
  void operator()(const PlayerInterrupt& e) const {
    field(out, "t", e.t_s);
    field(out, "watched_s", e.watched_s);
  }
  void operator()(const ZeroWindowEpisode& e) const {
    field(out, "t", e.t_s);
    field(out, "conn", e.connection_id);
    field(out, "endpoint", e.endpoint);
    field(out, "duration_s", e.duration_s);
  }
  void operator()(const LinkFault& e) const {
    field(out, "t", e.t_s);
    field(out, "kind", e.kind);
    field(out, "begin", static_cast<std::uint64_t>(e.begin ? 1 : 0));
    field(out, "rate_factor", e.rate_factor);
  }
  void operator()(const FetchRetry& e) const {
    field(out, "t", e.t_s);
    field(out, "attempt", static_cast<std::uint64_t>(e.attempt));
    field(out, "backoff_s", e.backoff_s);
    field(out, "remaining_bytes", e.remaining_bytes);
    field(out, "gave_up", static_cast<std::uint64_t>(e.gave_up ? 1 : 0));
  }
  void operator()(const SpanRecord& e) const {
    field(out, "t", e.t_end_s);
    field(out, "begin_s", e.t_begin_s);
    field(out, "mark_s", e.t_mark_s);
    field(out, "span_id", e.span_id);
    field(out, "id", e.id);
    field(out, "depth", static_cast<std::uint64_t>(e.depth));
    field(out, "cat", e.category);
    field(out, "name", e.name);
    field(out, "detail", e.detail);
  }
};

}  // namespace

const char* event_type(const TraceEvent& event) {
  struct Namer {
    const char* operator()(const TcpCwndSample&) const { return "tcp_cwnd"; }
    const char* operator()(const SimLoopSample&) const { return "sim_loop"; }
    const char* operator()(const PacingBlockEmitted&) const { return "pacing_block"; }
    const char* operator()(const PlayerStall&) const { return "player_stall"; }
    const char* operator()(const PlayerInterrupt&) const { return "player_interrupt"; }
    const char* operator()(const ZeroWindowEpisode&) const { return "zero_window"; }
    const char* operator()(const LinkFault&) const { return "link_fault"; }
    const char* operator()(const FetchRetry&) const { return "fetch_retry"; }
    const char* operator()(const SpanRecord&) const { return "span"; }
  };
  return std::visit(Namer{}, event);
}

std::string to_jsonl(const TraceEvent& event) {
  std::ostringstream out;
  out << "{\"type\":\"" << event_type(event) << '"';
  std::visit(JsonlWriter{out}, event);
  out << '}';
  return out.str();
}

namespace {

/// Locate the value text after `"key":`, or npos.
std::size_t value_offset(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

}  // namespace

std::optional<double> jsonl_number(const std::string& line, const std::string& key) {
  const std::size_t at = value_offset(line, key);
  if (at == std::string::npos) return std::nullopt;
  try {
    return std::stod(line.substr(at));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::string> jsonl_string(const std::string& line, const std::string& key) {
  std::size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') return std::nullopt;
  ++at;
  std::string out;
  while (at < line.size() && line[at] != '"') {
    if (line[at] == '\\' && at + 1 < line.size()) ++at;
    out += line[at++];
  }
  return out;
}

namespace {

double num(const std::string& line, const char* key, double fallback = 0.0) {
  return jsonl_number(line, key).value_or(fallback);
}

std::uint64_t unum(const std::string& line, const char* key) {
  return static_cast<std::uint64_t>(jsonl_number(line, key).value_or(0.0));
}

std::string str(const std::string& line, const char* key) {
  return jsonl_string(line, key).value_or(std::string{});
}

}  // namespace

std::optional<TraceEvent> from_jsonl(const std::string& line) {
  const auto type = jsonl_string(line, "type");
  if (!type) return std::nullopt;
  if (*type == "tcp_cwnd") {
    TcpCwndSample e;
    e.t_s = num(line, "t");
    e.connection_id = unum(line, "conn");
    e.endpoint = str(line, "endpoint");
    e.cwnd = unum(line, "cwnd");
    e.ssthresh = unum(line, "ssthresh");
    e.rwnd = unum(line, "rwnd");
    e.adv_wnd = unum(line, "adv_wnd");
    e.rto_s = num(line, "rto_s");
    e.bytes_in_flight = unum(line, "in_flight");
    return TraceEvent{e};
  }
  if (*type == "sim_loop") {
    SimLoopSample e;
    e.t_s = num(line, "t");
    e.events_processed = unum(line, "events");
    e.events_pending = unum(line, "pending");
    e.max_events_pending = unum(line, "max_pending");
    e.sim_wall_ratio = num(line, "sim_wall_ratio");
    return TraceEvent{e};
  }
  if (*type == "pacing_block") {
    PacingBlockEmitted e;
    e.t_s = num(line, "t");
    e.connection_id = unum(line, "conn");
    e.bytes = unum(line, "bytes");
    e.initial_burst = unum(line, "initial_burst") != 0;
    return TraceEvent{e};
  }
  if (*type == "player_stall") {
    PlayerStall e;
    e.t_s = num(line, "t");
    e.stall_count = static_cast<std::uint32_t>(unum(line, "stalls"));
    return TraceEvent{e};
  }
  if (*type == "player_interrupt") {
    PlayerInterrupt e;
    e.t_s = num(line, "t");
    e.watched_s = num(line, "watched_s");
    return TraceEvent{e};
  }
  if (*type == "zero_window") {
    ZeroWindowEpisode e;
    e.t_s = num(line, "t");
    e.connection_id = unum(line, "conn");
    e.endpoint = str(line, "endpoint");
    e.duration_s = num(line, "duration_s");
    return TraceEvent{e};
  }
  if (*type == "link_fault") {
    LinkFault e;
    e.t_s = num(line, "t");
    e.kind = str(line, "kind");
    e.begin = unum(line, "begin") != 0;
    e.rate_factor = num(line, "rate_factor", 1.0);
    return TraceEvent{e};
  }
  if (*type == "fetch_retry") {
    FetchRetry e;
    e.t_s = num(line, "t");
    e.attempt = static_cast<std::uint32_t>(unum(line, "attempt"));
    e.backoff_s = num(line, "backoff_s");
    e.remaining_bytes = unum(line, "remaining_bytes");
    e.gave_up = unum(line, "gave_up") != 0;
    return TraceEvent{e};
  }
  if (*type == "span") {
    SpanRecord e;
    e.t_end_s = num(line, "t");
    e.t_begin_s = num(line, "begin_s");
    e.t_mark_s = num(line, "mark_s", -1.0);
    e.span_id = unum(line, "span_id");
    e.id = unum(line, "id");
    e.depth = static_cast<std::uint32_t>(unum(line, "depth"));
    e.category = str(line, "cat");
    e.name = str(line, "name");
    e.detail = str(line, "detail");
    return TraceEvent{e};
  }
  return std::nullopt;
}

void TraceBus::attach(TraceSink* sink) {
  if (sink == nullptr) throw std::invalid_argument{"TraceBus::attach: null sink"};
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) sinks_.push_back(sink);
}

void TraceBus::detach(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

JsonlFileSink::JsonlFileSink(const std::string& path) : out_{path} {
  if (!out_) throw std::runtime_error{"JsonlFileSink: cannot open " + path};
}

void JsonlFileSink::on_event(const TraceEvent& event) {
  out_ << to_jsonl(event) << '\n';
  ++lines_;
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_{capacity} {
  if (capacity_ == 0) throw std::invalid_argument{"RingBufferSink: zero capacity"};
}

void RingBufferSink::on_event(const TraceEvent& event) {
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back(event);
  ++total_;
}

}  // namespace vstream::obs
