#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace vstream::obs {

namespace {

// One track (tid) per subsystem so Perfetto groups episodes the way the
// paper discusses them: player phases over fetch lifecycles over transport.
constexpr std::uint32_t kTidPlayer = 1;
constexpr std::uint32_t kTidFetch = 2;
constexpr std::uint32_t kTidTcp = 3;
constexpr std::uint32_t kTidLink = 4;
constexpr std::uint32_t kTidSim = 5;
constexpr std::uint32_t kTidPacing = 6;
constexpr std::uint32_t kTidOther = 7;

std::uint32_t tid_for(const std::string& category) {
  if (category == "player") return kTidPlayer;
  if (category == "fetch") return kTidFetch;
  if (category == "tcp") return kTidTcp;
  if (category == "link") return kTidLink;
  if (category == "sim") return kTidSim;
  return kTidOther;
}

const char* tid_name(std::uint32_t tid) {
  switch (tid) {
    case kTidPlayer: return "player";
    case kTidFetch: return "fetch";
    case kTidTcp: return "tcp";
    case kTidLink: return "link";
    case kTidSim: return "sim";
    case kTidPacing: return "pacing";
    default: return "analysis";
  }
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Sim-time seconds -> trace microseconds, fixed formatting so golden-file
/// tests are byte-stable across platforms.
std::string us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e6);
  return buf;
}

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

void ChromeTraceWriter::push(const std::string& row, std::uint32_t tid) {
  rows_.push_back(row);
  tids_.insert(tid);
}

void ChromeTraceWriter::add(const TraceEvent& event) {
  std::ostringstream o;
  const std::string pid = std::to_string(pid_);
  struct Renderer {
    ChromeTraceWriter& w;
    const std::string& pid;

    void instant(std::uint32_t tid, const std::string& name, const std::string& args,
                 double t_s) const {
      w.push("{\"ph\":\"i\",\"pid\":" + pid + ",\"tid\":" + std::to_string(tid) + ",\"ts\":" +
                 us(t_s) + ",\"s\":\"t\",\"name\":\"" + escape(name) + "\",\"args\":{" + args +
                 "}}",
             tid);
    }
    void counter(std::uint32_t tid, const std::string& name, const std::string& args,
                 double t_s) const {
      w.push("{\"ph\":\"C\",\"pid\":" + pid + ",\"tid\":" + std::to_string(tid) + ",\"ts\":" +
                 us(t_s) + ",\"name\":\"" + escape(name) + "\",\"args\":{" + args + "}}",
             tid);
    }

    void operator()(const SpanRecord& e) const {
      const std::uint32_t tid = tid_for(e.category);
      const std::string id = std::to_string(e.span_id);
      const std::string head = ",\"pid\":" + pid + ",\"tid\":" + std::to_string(tid) +
                               ",\"cat\":\"" + escape(e.category) + "\",\"id\":" + id +
                               ",\"name\":\"" + escape(e.name) + "\"";
      w.push("{\"ph\":\"b\"" + head + ",\"ts\":" + us(e.t_begin_s) + ",\"args\":{\"detail\":\"" +
                 escape(e.detail) + "\",\"domain_id\":" + std::to_string(e.id) +
                 ",\"depth\":" + std::to_string(e.depth) + "}}",
             tid);
      if (e.t_mark_s >= 0.0) {
        instant(tid, e.name + ".mark", "\"span_id\":" + id, e.t_mark_s);
      }
      w.push("{\"ph\":\"e\"" + head + ",\"ts\":" + us(e.t_end_s) + "}", tid);
    }
    void operator()(const TcpCwndSample& e) const {
      counter(kTidTcp, "cwnd conn" + std::to_string(e.connection_id),
              "\"cwnd\":" + std::to_string(e.cwnd) + ",\"ssthresh\":" +
                  std::to_string(e.ssthresh) + ",\"in_flight\":" +
                  std::to_string(e.bytes_in_flight),
              e.t_s);
    }
    void operator()(const SimLoopSample& e) const {
      counter(kTidSim, "sim_loop",
              "\"pending\":" + std::to_string(e.events_pending) + ",\"sim_wall_ratio\":" +
                  number(e.sim_wall_ratio),
              e.t_s);
    }
    void operator()(const PacingBlockEmitted& e) const {
      instant(kTidPacing, e.initial_burst ? "initial_burst" : "pacing_block",
              "\"conn\":" + std::to_string(e.connection_id) + ",\"bytes\":" +
                  std::to_string(e.bytes),
              e.t_s);
    }
    void operator()(const PlayerStall& e) const {
      instant(kTidPlayer, "stall", "\"stalls\":" + std::to_string(e.stall_count), e.t_s);
    }
    void operator()(const PlayerInterrupt& e) const {
      instant(kTidPlayer, "interrupt", "\"watched_s\":" + number(e.watched_s), e.t_s);
    }
    void operator()(const ZeroWindowEpisode&) const {
      // Rendered by the retro-emitted "zero_window" span instead; keeping
      // both would draw the episode twice.
    }
    void operator()(const LinkFault& e) const {
      instant(kTidLink, "fault_" + e.kind + (e.begin ? "_begin" : "_end"),
              "\"rate_factor\":" + number(e.rate_factor), e.t_s);
    }
    void operator()(const FetchRetry& e) const {
      instant(kTidFetch, e.gave_up ? "fetch_abandoned" : "fetch_retry",
              "\"attempt\":" + std::to_string(e.attempt) + ",\"backoff_s\":" +
                  number(e.backoff_s) + ",\"remaining_bytes\":" +
                  std::to_string(e.remaining_bytes),
              e.t_s);
    }
  };
  std::visit(Renderer{*this, pid}, event);
}

void ChromeTraceWriter::write(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const std::uint32_t tid : tids_) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"M\",\"pid\":" << pid_ << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << tid_name(tid) << "\"}}";
  }
  for (const std::string& row : rows_) {
    if (!first) out << ",\n";
    first = false;
    out << row;
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string ChromeTraceWriter::to_json() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

ChromeTraceSink::ChromeTraceSink(std::string path) : path_{std::move(path)} {}

ChromeTraceSink::~ChromeTraceSink() { close(); }

bool ChromeTraceSink::close() {
  if (written_) return true;
  written_ = true;
  std::ofstream out{path_};
  if (!out) return false;
  writer_.write(out);
  return out.good();
}

}  // namespace vstream::obs
