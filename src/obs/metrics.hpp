// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Components look an instrument up by name once (usually at construction)
// and keep the returned reference/pointer; the hot path is then a single
// predictable branch plus an increment — no hashing, no allocation. A
// registry belongs to one `Simulator`'s world, so parallel simulations
// never share state. `snapshot()` copies everything into a plain struct
// that can be merged across runs and rendered as (or parsed back from)
// JSON for machine-readable run telemetry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vstream::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Last-written (or high-water, via `set_max`) scalar.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_{0.0};
};

/// Histogram over fixed, sorted upper bounds plus an implicit overflow
/// bucket. A sample lands in the first bucket whose bound is >= the value
/// (bounds are inclusive upper edges).
class FixedHistogram {
 public:
  explicit FixedHistogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// One count per bound, plus the trailing overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 entries
  std::uint64_t count_{0};
  double sum_{0.0};
};

/// Plain-data copy of a registry's state at one instant.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count{0};
    double sum{0.0};

    /// Percentile estimate at quantile `q` in [0,1], linearly interpolated
    /// within the winning bucket (the first bucket from 0, the last bound
    /// for overflow samples). 0 when the histogram is empty.
    [[nodiscard]] double percentile(double q) const;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Combine another run's snapshot into this one: counters and histogram
  /// buckets add, gauges keep the maximum (gauges here are high-waters).
  /// Throws std::invalid_argument when the same histogram name arrives with
  /// different bucket bounds — adding misaligned buckets would silently
  /// corrupt every percentile downstream.
  void merge_from(const MetricsSnapshot& other);

  [[nodiscard]] std::string to_json() const;
};

/// Parse a snapshot back from the JSON `MetricsSnapshot::to_json` emits.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] MetricsSnapshot parse_snapshot(const std::string& json);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// `upper_bounds` applies only on first creation of `name`.
  FixedHistogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string to_json() const { return snapshot().to_json(); }

 private:
  // std::map keeps element addresses stable across inserts.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, FixedHistogram> histograms_;
};

}  // namespace vstream::obs
