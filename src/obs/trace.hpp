// Typed trace bus: in-sim probe events and pluggable sinks.
//
// Instrumented components emit small typed records (TCP congestion state,
// simulator-loop health, pacing blocks, player stalls, zero-window
// episodes) through the world's `TraceBus`. When no sink is attached the
// probes compile down to a single empty-vector check, so the instrumented
// hot paths stay cheap. Sinks: a JSONL file writer (one event object per
// line, machine-parsable) and a bounded ring buffer for tests.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace vstream::obs {

/// Sender-side TCP congestion snapshot, emitted on every state transition
/// (ACK-driven growth, loss response, idle restart) and whenever the peer's
/// advertised window crosses zero — the rwnd signal of Figs 2(b)/6(a).
struct TcpCwndSample {
  double t_s{0.0};
  std::uint64_t connection_id{0};
  std::string endpoint;  ///< emitting endpoint's label (client#N / server#N)
  std::uint64_t cwnd{0};
  std::uint64_t ssthresh{0};
  std::uint64_t rwnd{0};     ///< peer's advertised receive window
  std::uint64_t adv_wnd{0};  ///< own advertised window, as last transmitted
  double rto_s{0.0};
  std::uint64_t bytes_in_flight{0};
};

/// Periodic simulator-loop health sample (see `SimLoopMonitor`).
struct SimLoopSample {
  double t_s{0.0};
  std::uint64_t events_processed{0};
  std::uint64_t events_pending{0};
  std::uint64_t max_events_pending{0};  ///< queue-depth high water so far
  double sim_wall_ratio{0.0};           ///< sim seconds per wall second since last sample
};

/// A server pacing discipline pushed one block (or the initial burst).
struct PacingBlockEmitted {
  double t_s{0.0};
  std::uint64_t connection_id{0};
  std::uint64_t bytes{0};
  bool initial_burst{false};
};

/// Player buffer ran dry mid-playback.
struct PlayerStall {
  double t_s{0.0};
  std::uint32_t stall_count{0};  ///< cumulative, including this one
};

/// Viewer abandoned the session (lack of interest, beta in Section 6.2).
struct PlayerInterrupt {
  double t_s{0.0};
  double watched_s{0.0};
};

/// A receiver's advertised window sat at zero from `t_s - duration_s` to
/// `t_s` (episode emitted when the window reopens).
struct ZeroWindowEpisode {
  double t_s{0.0};
  std::uint64_t connection_id{0};
  std::string endpoint;
  double duration_s{0.0};
};

/// An impairment window opened (`begin`) or closed on a link (fault
/// injection, see net/dynamics.hpp).
struct LinkFault {
  double t_s{0.0};
  std::string kind;  ///< "rate_scale" | "delay_spike" | "burst_loss" | "blackout"
  bool begin{true};
  double rate_factor{1.0};  ///< effective serialisation-rate factor after the transition
};

/// A fetch hit its no-progress timeout and is being retried on a fresh
/// connection after an exponential backoff (streaming/fetch resilience).
struct FetchRetry {
  double t_s{0.0};
  std::uint32_t attempt{0};      ///< 1 for the first retry
  double backoff_s{0.0};         ///< wait before the reissue
  std::uint64_t remaining_bytes{0};
  bool gave_up{false};           ///< retry budget exhausted; fetch abandoned
};

/// A closed episode span from the `obs::SpanTracer` layer (span.hpp):
/// fetch lifecycle, player phases, TCP recovery, fault windows. Emitted
/// once, when the span closes (or is truncated at teardown).
struct SpanRecord {
  double t_begin_s{0.0};
  double t_end_s{0.0};
  double t_mark_s{-1.0};  ///< optional mid-span mark (fetch first byte); <0 = none
  std::uint64_t span_id{0};  ///< per-tracer monotonic, deterministic
  std::uint64_t id{0};       ///< domain id (connection id, attempt, ...)
  std::uint32_t depth{0};    ///< open spans when this one opened
  std::string category;      ///< "fetch" | "player" | "tcp" | "link" | "sim"
  std::string name;
  std::string detail;  ///< outcome: "complete", "stalled", "capture_end", ...
};

using TraceEvent = std::variant<TcpCwndSample, SimLoopSample, PacingBlockEmitted, PlayerStall,
                                PlayerInterrupt, ZeroWindowEpisode, LinkFault, FetchRetry,
                                SpanRecord>;

/// Stable type tag used as the JSONL "type" field.
[[nodiscard]] const char* event_type(const TraceEvent& event);

/// Render one event as a single-line JSON object ("type" + fields).
[[nodiscard]] std::string to_jsonl(const TraceEvent& event);

/// Parse one `to_jsonl` line back into a typed event; nullopt when the line
/// is not one of ours. Powers the offline JSONL → Chrome-trace converter
/// (tools/trace_export).
[[nodiscard]] std::optional<TraceEvent> from_jsonl(const std::string& line);

/// Pull one numeric field out of a JSONL event line; nullopt when absent.
/// Cheap string scan sufficient for the flat objects `to_jsonl` writes.
[[nodiscard]] std::optional<double> jsonl_number(const std::string& line, const std::string& key);

/// Pull one string field out of a JSONL event line.
[[nodiscard]] std::optional<std::string> jsonl_string(const std::string& line,
                                                      const std::string& key);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& event) = 0;
};

/// Fan-out point owned by the world's `ObsContext`. Sinks are non-owning.
class TraceBus {
 public:
  void attach(TraceSink* sink);
  void detach(TraceSink* sink);

  /// True when at least one sink listens; probes gate their work on this.
  [[nodiscard]] bool active() const { return !sinks_.empty(); }
  [[nodiscard]] std::uint64_t events_emitted() const { return events_emitted_; }

  void emit(const TraceEvent& event) {
    if (sinks_.empty()) return;
    ++events_emitted_;
    for (TraceSink* sink : sinks_) sink->on_event(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
  std::uint64_t events_emitted_{0};
};

/// Writes one JSON object per line. Lines are buffered; they reach disk on
/// destruction or an explicit flush(). Readers that tail the file while the
/// sink is live must flush() first or they will miss the buffered tail.
class JsonlFileSink final : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  void on_event(const TraceEvent& event) override;
  /// Push buffered lines to disk (e.g. before reading the file back while
  /// the sink stays attached).
  void flush() { out_.flush(); }
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }
  [[nodiscard]] bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
  std::uint64_t lines_{0};
};

/// Keeps the most recent `capacity` events in memory (tests, debugging).
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);
  void on_event(const TraceEvent& event) override;

  [[nodiscard]] const std::deque<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t total_seen() const { return total_; }

  /// All buffered events of one type, in arrival order.
  template <typename Ev>
  [[nodiscard]] std::vector<Ev> collect() const {
    std::vector<Ev> out;
    for (const auto& e : events_) {
      if (const auto* ev = std::get_if<Ev>(&e)) out.push_back(*ev);
    }
    return out;
  }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t total_{0};
};

}  // namespace vstream::obs
