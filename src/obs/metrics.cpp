#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace vstream::obs {

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_{std::move(upper_bounds)} {
  if (bounds_.empty()) throw std::invalid_argument{"FixedHistogram: no buckets"};
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"FixedHistogram: bounds must be sorted"};
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void FixedHistogram::observe(double v) {
  // First bucket whose inclusive upper edge admits the value; everything
  // above the last bound lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name,
                                           std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, FixedHistogram{std::move(upper_bounds)}).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g.value());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h.bounds();
    data.counts = h.counts();
    data.count = h.count();
    data.sum = h.sum();
    snap.histograms.emplace(name, std::move(data));
  }
  return snap;
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, v);
    if (!inserted) it->second = std::max(it->second, v);
  }
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = histograms.emplace(name, h);
    if (inserted) continue;
    auto& mine = it->second;
    if (mine.bounds != h.bounds || mine.counts.size() != h.counts.size()) {
      throw std::invalid_argument{"MetricsSnapshot::merge_from: histogram '" + name +
                                  "' bucket layout differs between snapshots; refusing to "
                                  "misalign buckets"};
    }
    for (std::size_t i = 0; i < mine.counts.size(); ++i) {
      mine.counts[i] += h.counts[i];
    }
    mine.count += h.count;
    mine.sum += h.sum;
  }
}

double MetricsSnapshot::HistogramData::percentile(double q) const {
  if (count == 0 || counts.empty() || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (in_bucket <= 0.0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Overflow bucket has no upper edge: clamp to the last known bound.
    if (i >= bounds.size()) return bounds.back();
    const double upper = bounds[i];
    // The first bucket interpolates from 0 (our measured quantities are
    // non-negative); negative bounds fall back to the edge itself.
    const double lower = i == 0 ? std::min(0.0, upper) : bounds[i - 1];
    const double fraction = (rank - cumulative) / in_bucket;
    return lower + (upper - lower) * fraction;
  }
  return bounds.back();
}

namespace {

void append_double(std::ostringstream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void append_quoted(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out << ',';
    first = false;
    append_quoted(out, name);
    out << ':' << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out << ',';
    first = false;
    append_quoted(out, name);
    out << ':';
    append_double(out, v);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ',';
    first = false;
    append_quoted(out, name);
    out << ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out << ',';
      append_double(out, h.bounds[i]);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out << ',';
      out << h.counts[i];
    }
    out << "],\"count\":" << h.count << ",\"sum\":";
    append_double(out, h.sum);
    out << ",\"p50\":";
    append_double(out, h.percentile(0.50));
    out << ",\"p90\":";
    append_double(out, h.percentile(0.90));
    out << ",\"p99\":";
    append_double(out, h.percentile(0.99));
    out << '}';
  }
  out << "}}";
  return out.str();
}

// --------------------------------------------------------------- JSON parse
//
// A minimal recursive-descent reader for the subset `to_json` emits (string
// keys, numbers, nested objects, flat numeric arrays). Kept here so tests
// and tooling can round-trip snapshots without an external JSON dependency.

namespace {

class Reader {
 public:
  explicit Reader(const std::string& text) : s_{text} {}

  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])) != 0) ++i_;
  }

  void expect(char c) {
    ws();
    if (i_ >= s_.size() || s_[i_] != c) {
      throw std::runtime_error{"parse_snapshot: expected '" + std::string{c} + "' at offset " +
                               std::to_string(i_)};
    }
    ++i_;
  }

  [[nodiscard]] bool peek(char c) {
    ws();
    return i_ < s_.size() && s_[i_] == c;
  }

  bool consume(char c) {
    if (!peek(c)) return false;
    ++i_;
    return true;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) ++i_;
      out += s_[i_++];
    }
    expect('"');
    return out;
  }

  double number() {
    ws();
    if (s_.compare(i_, 4, "null") == 0) {
      i_ += 4;
      return 0.0;
    }
    std::size_t used = 0;
    double v = 0.0;
    try {
      v = std::stod(s_.substr(i_), &used);
    } catch (const std::exception&) {
      throw std::runtime_error{"parse_snapshot: bad number at offset " + std::to_string(i_)};
    }
    i_ += used;
    return v;
  }

  std::vector<double> number_array() {
    std::vector<double> out;
    expect('[');
    if (consume(']')) return out;
    do {
      out.push_back(number());
    } while (consume(','));
    expect(']');
    return out;
  }

 private:
  const std::string& s_;
  std::size_t i_{0};
};

}  // namespace

MetricsSnapshot parse_snapshot(const std::string& json) {
  MetricsSnapshot snap;
  Reader r{json};
  r.expect('{');
  if (r.consume('}')) return snap;
  do {
    const std::string section = r.string();
    r.expect(':');
    r.expect('{');
    if (r.consume('}')) continue;
    do {
      const std::string name = r.string();
      r.expect(':');
      if (section == "counters") {
        snap.counters[name] = static_cast<std::uint64_t>(r.number());
      } else if (section == "gauges") {
        snap.gauges[name] = r.number();
      } else if (section == "histograms") {
        MetricsSnapshot::HistogramData h;
        r.expect('{');
        do {
          const std::string field = r.string();
          r.expect(':');
          if (field == "bounds") {
            h.bounds = r.number_array();
          } else if (field == "counts") {
            for (const double c : r.number_array()) {
              h.counts.push_back(static_cast<std::uint64_t>(c));
            }
          } else if (field == "count") {
            h.count = static_cast<std::uint64_t>(r.number());
          } else if (field == "sum") {
            h.sum = r.number();
          } else if (field == "p50" || field == "p90" || field == "p99") {
            // Derived tails; recomputed from the buckets on re-emission.
            static_cast<void>(r.number());
          } else {
            throw std::runtime_error{"parse_snapshot: unknown histogram field " + field};
          }
        } while (r.consume(','));
        r.expect('}');
        snap.histograms.emplace(name, std::move(h));
      } else {
        throw std::runtime_error{"parse_snapshot: unknown section " + section};
      }
    } while (r.consume(','));
    r.expect('}');
  } while (r.consume(','));
  r.expect('}');
  return snap;
}

}  // namespace vstream::obs
