// Sim-time span layer over the trace bus: RAII episode handles.
//
// The point probes of trace.hpp answer "what happened at t"; spans answer
// "what interval was the world in". A `SpanTracer` (one per ObsContext)
// hands out move-only `Span` handles; closing one — explicitly with an
// outcome string, or implicitly from the destructor — emits a single
// `SpanRecord` on the trace bus with begin/end sim-times, a per-tracer
// monotonic span id, and the nesting depth at open time.
//
// Determinism contract: spans read `Simulator::now()` and emit; they never
// schedule events, touch the RNG, or otherwise feed back into the
// simulation, so a run's state digest is identical with tracing armed or
// unobserved (tools/determinism_audit runs its second twin armed to prove
// it). Instrumented components open spans through `obs::open_span`
// (context.hpp), which collapses to two pointer loads and a branch when no
// sink listens.
//
// Handles are generation-checked: `SpanTracer::close_all` (called at
// simulator teardown to flush episodes truncated by the capture window)
// invalidates outstanding handles, so their later destruction is a no-op
// rather than a double emit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vstream::sim {
class Simulator;
}

namespace vstream::obs {

class TraceBus;
class SpanTracer;

/// Coarse subsystem tag; becomes the exporter's track/category.
enum class SpanCategory : std::uint8_t { kFetch = 0, kPlayer, kTcp, kLink, kSim };

[[nodiscard]] const char* to_string(SpanCategory category);

/// Move-only handle on one open span. Default-constructed handles are inert
/// (the unobserved fast path); every operation on an inert or already-closed
/// handle is a no-op.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span();

  /// True while this handle owns an open span.
  [[nodiscard]] bool active() const;

  /// Close now with an outcome string ("complete", "stalled", ...).
  void close(const std::string& detail);
  void close() { close(std::string{}); }

  /// Stamp the span's single mid-point mark (e.g. fetch first byte) at the
  /// current sim-time. First call wins.
  void mark();

 private:
  friend class SpanTracer;
  Span(SpanTracer* tracer, std::uint32_t slot, std::uint32_t generation)
      : tracer_{tracer}, slot_{slot}, generation_{generation} {}

  SpanTracer* tracer_{nullptr};
  std::uint32_t slot_{0};
  std::uint32_t generation_{0};
};

/// Owns the open-span slot pool and emits `SpanRecord`s on the bus it was
/// constructed over. Bound to a simulator (its clock) on first use.
class SpanTracer {
 public:
  explicit SpanTracer(TraceBus& bus) : bus_{&bus} {}

  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Bind the sim-time source. Idempotent for the same simulator; rebinding
  /// to a different one while spans are open throws.
  void bind(const sim::Simulator& sim);

  /// Open a span beginning now. `id` is a domain identifier (connection id,
  /// fetch attempt, ...) carried opaquely into the record.
  [[nodiscard]] Span open(SpanCategory category, std::string name, std::uint64_t id = 0);

  /// Emit a retrospective, already-finished span: begins at `t_begin_s`,
  /// ends now. Used for episodes only detectable at their end (zero-window
  /// reopen).
  void emit_complete(double t_begin_s, SpanCategory category, std::string name, std::uint64_t id,
                     std::string detail);

  /// Close every open span now with the given outcome (e.g. "capture_end")
  /// and invalidate their handles. Returns how many were closed — the
  /// unclosed-span count at teardown.
  std::size_t close_all(const std::string& detail);

  [[nodiscard]] std::size_t open_spans() const { return open_count_; }
  [[nodiscard]] std::uint64_t spans_opened() const { return next_span_id_ - 1; }
  [[nodiscard]] const sim::Simulator* sim() const { return sim_; }

 private:
  friend class Span;

  struct Slot {
    double t_begin_s{0.0};
    double t_mark_s{-1.0};  ///< <0 = no mark
    std::uint64_t span_id{0};
    std::uint64_t id{0};
    std::string name;
    SpanCategory category{SpanCategory::kSim};
    std::uint32_t depth{0};
    std::uint32_t generation{0};
    bool live{false};
  };

  [[nodiscard]] bool slot_live(std::uint32_t slot, std::uint32_t generation) const;
  void close_slot(std::uint32_t slot, std::uint32_t generation, const std::string& detail);
  void mark_slot(std::uint32_t slot, std::uint32_t generation);
  [[nodiscard]] double now_s() const;

  TraceBus* bus_;
  const sim::Simulator* sim_{nullptr};
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t open_count_{0};
  std::uint64_t next_span_id_{1};
};

}  // namespace vstream::obs
