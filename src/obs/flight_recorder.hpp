// Flight recorder: a bounded ring of recent trace events that dumps its
// tail the moment something goes wrong — a `VSTREAM_*` contract firing or a
// fetch exhausting its retry budget — so post-mortems get the last N
// episodes without paying for full-run JSONL capture.
//
// The contract trigger uses `check::set_violation_hook`, which is
// thread-local: construct the recorder on the thread that runs the world it
// observes (under runner::ParallelSweep that is the worker thread). The
// dump is JSONL — one `{"type":"flight_dump",...}` header line followed by
// the buffered events — readable by the same tooling as JsonlFileSink
// output, including `tools/trace_export`.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "check/contracts.hpp"
#include "obs/trace.hpp"

namespace vstream::obs {

class FlightRecorder final : public TraceSink {
 public:
  struct Options {
    std::size_t capacity{256};     ///< events retained; older ones fall off
    std::string dump_path;         ///< dump target; empty = stderr
    bool dump_on_abandon{true};    ///< FetchRetry{gave_up} triggers a dump
    bool arm_contract_hook{true};  ///< dump when a VSTREAM_* contract fires
  };

  explicit FlightRecorder(Options options);
  ~FlightRecorder() override;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void on_event(const TraceEvent& event) override;

  /// Write the buffered tail now, headed by `reason`. Each call overwrites
  /// the previous dump file — the newest failure is the interesting one.
  void dump(const std::string& reason);

  [[nodiscard]] std::size_t dumps_written() const { return dumps_; }
  [[nodiscard]] const std::deque<TraceEvent>& buffered() const { return ring_; }

 private:
  Options options_;
  std::deque<TraceEvent> ring_;
  std::size_t dumps_{0};
  check::ViolationHook previous_hook_;
  bool hook_armed_{false};
};

}  // namespace vstream::obs
