// Chrome trace-event / Perfetto exporter for the trace bus.
//
// `ChromeTraceWriter` converts typed `TraceEvent`s into trace-event JSON
// (the `{"traceEvents":[...]}` format chrome://tracing and
// https://ui.perfetto.dev load natively): span records become async
// begin/end pairs on per-subsystem tracks, cwnd and sim-loop samples become
// counter tracks, and the point probes (stalls, retries, fault edges,
// pacing blocks) become instants. Sim-time seconds map to trace
// microseconds. `ZeroWindowEpisode` point events are skipped — the
// TCP endpoint retro-emits the same episode as a span, which renders as a
// proper slice instead.
//
// `ChromeTraceSink` plugs the writer into a `TraceBus` and writes the JSON
// file once, on close() or destruction. Wire it up with the `--trace-out`
// flag on the examples, or convert a JSONL capture offline with
// `tools/trace_export`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace vstream::obs {

class ChromeTraceWriter {
 public:
  /// Process id stamped on every row; distinguishes sessions when several
  /// writers merge into one file.
  void set_pid(std::uint32_t pid) { pid_ = pid; }

  void add(const TraceEvent& event);

  /// Number of trace-event rows buffered so far (metadata excluded).
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render the complete trace-event JSON document.
  void write(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;

 private:
  void push(const std::string& row, std::uint32_t tid);

  std::uint32_t pid_{1};
  std::vector<std::string> rows_;
  std::set<std::uint32_t> tids_;
};

/// TraceBus sink that renders everything it sees to one Chrome-trace JSON
/// file. The file is written atomically-late: on close() or destruction.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::string path);
  ~ChromeTraceSink() override;

  void on_event(const TraceEvent& event) override { writer_.add(event); }

  /// Write the JSON file now (idempotent). Returns false on I/O failure.
  bool close();

  [[nodiscard]] ChromeTraceWriter& writer() { return writer_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  ChromeTraceWriter writer_;
  bool written_{false};
};

}  // namespace vstream::obs
