#include "obs/span.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace vstream::obs {

const char* to_string(SpanCategory category) {
  switch (category) {
    case SpanCategory::kFetch: return "fetch";
    case SpanCategory::kPlayer: return "player";
    case SpanCategory::kTcp: return "tcp";
    case SpanCategory::kLink: return "link";
    case SpanCategory::kSim: return "sim";
  }
  return "unknown";
}

Span::Span(Span&& other) noexcept
    : tracer_{std::exchange(other.tracer_, nullptr)},
      slot_{other.slot_},
      generation_{other.generation_} {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    close();
    tracer_ = std::exchange(other.tracer_, nullptr);
    slot_ = other.slot_;
    generation_ = other.generation_;
  }
  return *this;
}

Span::~Span() { close(); }

bool Span::active() const {
  return tracer_ != nullptr && tracer_->slot_live(slot_, generation_);
}

void Span::close(const std::string& detail) {
  if (tracer_ == nullptr) return;
  tracer_->close_slot(slot_, generation_, detail);
  tracer_ = nullptr;
}

void Span::mark() {
  if (tracer_ != nullptr) tracer_->mark_slot(slot_, generation_);
}

void SpanTracer::bind(const sim::Simulator& sim) {
  if (sim_ == &sim) return;
  if (sim_ != nullptr && open_count_ > 0) {
    throw std::logic_error{"SpanTracer::bind: rebinding with open spans"};
  }
  sim_ = &sim;
}

double SpanTracer::now_s() const {
  if (sim_ == nullptr) throw std::logic_error{"SpanTracer: no simulator bound (call bind first)"};
  return sim_->now().to_seconds();
}

Span SpanTracer::open(SpanCategory category, std::string name, std::uint64_t id) {
  const double now = now_s();
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.t_begin_s = now;
  s.t_mark_s = -1.0;
  s.span_id = next_span_id_++;
  s.id = id;
  s.name = std::move(name);
  s.category = category;
  s.depth = static_cast<std::uint32_t>(open_count_);
  s.live = true;
  ++open_count_;
  return Span{this, slot, s.generation};
}

void SpanTracer::emit_complete(double t_begin_s, SpanCategory category, std::string name,
                               std::uint64_t id, std::string detail) {
  SpanRecord record;
  record.t_begin_s = t_begin_s;
  record.t_end_s = now_s();
  record.span_id = next_span_id_++;
  record.id = id;
  record.depth = static_cast<std::uint32_t>(open_count_);
  record.category = to_string(category);
  record.name = std::move(name);
  record.detail = std::move(detail);
  bus_->emit(record);
}

bool SpanTracer::slot_live(std::uint32_t slot, std::uint32_t generation) const {
  return slot < slots_.size() && slots_[slot].live && slots_[slot].generation == generation;
}

void SpanTracer::close_slot(std::uint32_t slot, std::uint32_t generation,
                            const std::string& detail) {
  if (!slot_live(slot, generation)) return;
  Slot& s = slots_[slot];
  SpanRecord record;
  record.t_begin_s = s.t_begin_s;
  record.t_end_s = now_s();
  record.t_mark_s = s.t_mark_s;
  record.span_id = s.span_id;
  record.id = s.id;
  record.depth = s.depth;
  record.category = to_string(s.category);
  record.name = std::move(s.name);
  record.detail = detail;
  s.live = false;
  ++s.generation;  // invalidates any other handle copies of this slot
  s.name.clear();
  free_.push_back(slot);
  --open_count_;
  bus_->emit(record);
}

void SpanTracer::mark_slot(std::uint32_t slot, std::uint32_t generation) {
  if (!slot_live(slot, generation)) return;
  Slot& s = slots_[slot];
  if (s.t_mark_s < 0.0) s.t_mark_s = now_s();
}

std::size_t SpanTracer::close_all(const std::string& detail) {
  // Emit truncated spans in open order (span_id) so twin runs produce
  // byte-identical streams regardless of slot reuse history.
  std::vector<std::uint32_t> live;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) live.push_back(i);
  }
  std::sort(live.begin(), live.end(), [this](std::uint32_t a, std::uint32_t b) {
    return slots_[a].span_id < slots_[b].span_id;
  });
  for (const std::uint32_t slot : live) close_slot(slot, slots_[slot].generation, detail);
  return live.size();
}

}  // namespace vstream::obs
