#include "obs/context.hpp"

// vstream-lint-file: allow(wall-clock): the loop monitor's whole job is to
// compare simulated time against host wall time (sim.sim_wall_ratio); no
// simulation decision ever depends on these reads.

namespace vstream::obs {

SimLoopMonitor::SimLoopMonitor(sim::Simulator& sim, sim::Duration period)
    : sim_{sim}, timer_{sim, period, [this] { sample(); }} {}

void SimLoopMonitor::start() {
  last_wall_ = std::chrono::steady_clock::now();
  last_sim_ = sim_.now();
  timer_.start();
}

void SimLoopMonitor::sample() {
  ObsContext* obs = sim_.obs();
  if (obs == nullptr) return;
  ++samples_;

  const auto wall_now = std::chrono::steady_clock::now();
  const double wall_dt = std::chrono::duration<double>(wall_now - last_wall_).count();
  const double sim_dt = (sim_.now() - last_sim_).to_seconds();
  last_wall_ = wall_now;
  last_sim_ = sim_.now();
  const double ratio = wall_dt > 0.0 ? sim_dt / wall_dt : 0.0;

  auto& reg = obs->metrics();
  reg.gauge("sim.events_pending_high_water")
      .set_max(static_cast<double>(sim_.max_events_pending()));
  reg.gauge("sim.sim_wall_ratio").set(ratio);
  reg.counter("sim.loop_samples").inc();

  if (obs->trace().active()) {
    SimLoopSample s;
    s.t_s = sim_.now().to_seconds();
    s.events_processed = sim_.events_processed();
    s.events_pending = sim_.events_pending();
    s.max_events_pending = sim_.max_events_pending();
    s.sim_wall_ratio = ratio;
    obs->trace().emit(s);
  }
}

}  // namespace vstream::obs
