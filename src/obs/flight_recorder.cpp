#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace vstream::obs {

FlightRecorder::FlightRecorder(Options options) : options_{std::move(options)} {
  if (options_.capacity == 0) throw std::invalid_argument{"FlightRecorder: zero capacity"};
  if (options_.arm_contract_hook) {
    previous_hook_ = check::set_violation_hook(
        [this](const check::ContractViolation& violation) { dump(violation.what()); });
    hook_armed_ = true;
  }
}

FlightRecorder::~FlightRecorder() {
  if (hook_armed_) check::set_violation_hook(std::move(previous_hook_));
}

void FlightRecorder::on_event(const TraceEvent& event) {
  if (ring_.size() == options_.capacity) ring_.pop_front();
  ring_.push_back(event);
  if (options_.dump_on_abandon) {
    if (const auto* retry = std::get_if<FetchRetry>(&event); retry != nullptr && retry->gave_up) {
      dump("fetch abandoned after attempt " + std::to_string(retry->attempt));
    }
  }
}

void FlightRecorder::dump(const std::string& reason) {
  ++dumps_;
  std::string header = "{\"type\":\"flight_dump\",\"reason\":\"";
  for (const char c : reason) {
    if (c == '"' || c == '\\') header += '\\';
    if (c == '\n') {
      header += ' ';
      continue;
    }
    header += c;
  }
  header += "\",\"events\":" + std::to_string(ring_.size()) + "}";

  if (options_.dump_path.empty()) {
    std::fprintf(stderr, "%s\n", header.c_str());
    for (const TraceEvent& event : ring_) {
      std::fprintf(stderr, "%s\n", to_jsonl(event).c_str());
    }
    return;
  }
  std::ofstream out{options_.dump_path};
  if (!out) return;  // dumping must never add a second failure on top
  out << header << '\n';
  for (const TraceEvent& event : ring_) out << to_jsonl(event) << '\n';
}

}  // namespace vstream::obs
