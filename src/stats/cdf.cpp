#include "stats/cdf.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vstream::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : samples_{samples.begin(), samples.end()}, sorted_{false} {
  finalize();
}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::finalize() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

const std::vector<double>& EmpiricalCdf::sorted_samples() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) throw std::logic_error{"EmpiricalCdf::at: empty CDF"};
  const auto& s = sorted_samples();
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

double EmpiricalCdf::inverse(double q) const {
  if (samples_.empty()) throw std::logic_error{"EmpiricalCdf::inverse: empty CDF"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"EmpiricalCdf::inverse: q outside [0,1]"};
  const auto& s = sorted_samples();
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) throw std::logic_error{"EmpiricalCdf::min: empty CDF"};
  return sorted_samples().front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) throw std::logic_error{"EmpiricalCdf::max: empty CDF"};
  return sorted_samples().back();
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::points() const {
  const auto& s = sorted_samples();
  std::vector<Point> pts;
  pts.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    pts.push_back(Point{s[i], static_cast<double>(i + 1) / static_cast<double>(s.size())});
  }
  return pts;
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::sampled(double lo, double hi,
                                                       std::size_t n) const {
  if (n < 2) throw std::invalid_argument{"EmpiricalCdf::sampled: need n >= 2"};
  if (hi < lo) throw std::invalid_argument{"EmpiricalCdf::sampled: hi < lo"};
  std::vector<Point> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    pts.push_back(Point{x, at(x)});
  }
  return pts;
}

double EmpiricalCdf::ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b) {
  if (a.empty() || b.empty()) throw std::logic_error{"ks_distance: empty CDF"};
  const auto& xs = a.sorted_samples();
  const auto& ys = b.sorted_samples();
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < xs.size() && j < ys.size()) {
    const double x = std::min(xs[i], ys[j]);
    while (i < xs.size() && xs[i] <= x) ++i;
    while (j < ys.size() && ys[j] <= x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(xs.size());
    const double fb = static_cast<double>(j) / static_cast<double>(ys.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

std::string EmpiricalCdf::summary() const {
  if (samples_.empty()) return "(empty)";
  char buf[160];
  std::snprintf(buf, sizeof buf, "p10=%.3g p25=%.3g p50=%.3g p75=%.3g p90=%.3g", inverse(0.10),
                inverse(0.25), inverse(0.50), inverse(0.75), inverse(0.90));
  return buf;
}

}  // namespace vstream::stats
