// Empirical cumulative distribution functions.
//
// Every distribution figure in the paper (block sizes, accumulation ratios,
// buffered playback time, ack-clock bytes, Netflix buffering amounts) is a
// CDF; this class evaluates, inverts and renders them.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace vstream::stats {

class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::span<const double> samples);

  void add(double x);
  /// Sort pending samples; called lazily by the accessors, or explicitly.
  void finalize();

  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }

  /// P(X <= x).
  [[nodiscard]] double at(double x) const;

  /// Inverse CDF (quantile) with linear interpolation, q in [0,1].
  [[nodiscard]] double inverse(double q) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Step points (x, F(x)) suitable for plotting or textual tables.
  struct Point {
    double x;
    double f;
  };
  [[nodiscard]] std::vector<Point> points() const;

  /// Evaluate the CDF at `n` evenly spaced x positions spanning [lo, hi].
  [[nodiscard]] std::vector<Point> sampled(double lo, double hi, std::size_t n) const;

  /// Render a one-line summary "p10=.. p25=.. p50=.. p75=.. p90=..".
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const;

  /// Two-sample Kolmogorov-Smirnov distance sup_x |F_a(x) - F_b(x)| —
  /// used to quantify how closely two measured distributions agree (e.g.
  /// block-size CDFs across vantage networks).
  [[nodiscard]] static double ks_distance(const EmpiricalCdf& a, const EmpiricalCdf& b);

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

}  // namespace vstream::stats
