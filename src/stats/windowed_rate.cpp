#include "stats/windowed_rate.hpp"

#include <stdexcept>

namespace vstream::stats {

WindowedRate::WindowedRate(double window_s, double warmup_s)
    : window_s_{window_s}, window_start_s_{warmup_s} {
  if (window_s <= 0.0) {
    throw std::invalid_argument{"WindowedRate: window must be positive"};
  }
  if (warmup_s < 0.0) {
    throw std::invalid_argument{"WindowedRate: warmup must be non-negative"};
  }
}

void WindowedRate::advance_to(double t_s) {
  while (t_s >= window_start_s_ + window_s_) {
    windows_.add(8.0 * static_cast<double>(window_bytes_) / window_s_);
    window_bytes_ = 0;
    window_start_s_ += window_s_;
  }
}

void WindowedRate::on_bytes(double t_s, std::uint64_t bytes) {
  if (t_s < window_start_s_) return;  // warmup, or pre-first-window traffic
  advance_to(t_s);
  window_bytes_ += bytes;
}

}  // namespace vstream::stats
