// Per-window aggregate rate sampling for R(t), the superposed traffic
// process of Section 6.
//
// The paper estimates the mean and variance of aggregate streaming traffic
// by averaging the byte count over fixed windows; `WindowedRate` does the
// same over a simulated byte stream (the shared bottleneck's deliveries).
// Bytes are credited to the window covering their delivery time, windows
// close lazily as time advances, and the closed-window statistics are kept
// as (count, sum, sum of squares, peak) so shard results pool exactly:
// the combined mean/variance over all shards' windows is computed from the
// summed moments, independent of shard boundaries or merge order.
#pragma once

#include <cstdint>

namespace vstream::stats {

/// Moment accumulator over closed windows. Also reused for any per-window
/// scalar series (e.g. concurrent-session counts).
struct WindowStats {
  std::uint64_t count{0};
  double sum{0.0};
  double sum_sq{0.0};
  double peak{0.0};

  void add(double value) {
    ++count;
    sum += value;
    sum_sq += value * value;
    if (value > peak) peak = value;
  }

  void merge(const WindowStats& other) {
    count += other.count;
    sum += other.sum;
    sum_sq += other.sum_sq;
    if (other.peak > peak) peak = other.peak;
  }

  [[nodiscard]] double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Population variance over the windows.
  [[nodiscard]] double variance() const {
    if (count == 0) return 0.0;
    const double m = mean();
    const double v = sum_sq / static_cast<double>(count) - m * m;
    return v > 0.0 ? v : 0.0;
  }
};

class WindowedRate {
 public:
  /// Windows of `window_s` seconds starting at `warmup_s`; bytes before the
  /// warmup are discarded (arrival-process ramp-up is not stationary R(t)).
  WindowedRate(double window_s, double warmup_s);

  /// Credit `bytes` delivered at time `t_s`. Times must be non-decreasing
  /// (simulation order); earlier windows are closed first.
  void on_bytes(double t_s, std::uint64_t bytes);

  /// Close every window that ends at or before `t_s`. Call with the
  /// horizon after the run so trailing silent windows count as zero-rate.
  void advance_to(double t_s);

  [[nodiscard]] const WindowStats& windows() const { return windows_; }
  [[nodiscard]] double window_s() const { return window_s_; }

 private:
  double window_s_;
  double window_start_s_;
  std::uint64_t window_bytes_{0};
  WindowStats windows_;
};

}  // namespace vstream::stats
