// Time-series utilities: binned rate series and autocorrelation.
//
// Used by the periodicity analysis (an independent estimator of ON-OFF
// cycle duration) and by the empirical aggregate-traffic experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vstream::stats {

/// Fixed-step time series, value per bin.
struct TimeSeries {
  double t0{0.0};
  double dt{1.0};
  std::vector<double> values;

  [[nodiscard]] std::size_t size() const { return values.size(); }
  [[nodiscard]] double t_at(std::size_t i) const { return t0 + dt * static_cast<double>(i); }
};

/// Accumulate (timestamp, amount) events into a binned rate series over
/// [t0, t1): value = sum(amount in bin) / dt, i.e. a rate if `amount` is in
/// units per event.
class RateBinner {
 public:
  RateBinner(double t0, double t1, double dt);

  void add(double t, double amount);

  [[nodiscard]] TimeSeries series() const;

 private:
  double t0_;
  double dt_;
  std::vector<double> sums_;
};

/// Normalised autocorrelation r(k) for lags 0..max_lag (r(0) = 1). Returns
/// an empty vector for constant or too-short series.
[[nodiscard]] std::vector<double> autocorrelation(std::span<const double> xs,
                                                  std::size_t max_lag);

/// The lag (> 0) of the highest autocorrelation peak, i.e. the dominant
/// period in bins; 0 when no significant peak exists above `threshold`.
[[nodiscard]] std::size_t dominant_period_bins(std::span<const double> autocorr,
                                               double threshold = 0.1);

}  // namespace vstream::stats
