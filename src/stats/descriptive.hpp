// Descriptive statistics over samples.
//
// These are the primitives the paper's analysis uses: means/medians of block
// sizes and accumulation ratios, quantiles for CDF summaries, and Pearson
// correlation (buffering amount vs encoding rate, download rate vs encoding
// rate).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace vstream::stats {

[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased (n-1) sample variance; 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs);

[[nodiscard]] double stddev(std::span<const double> xs);

[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// Quantile with linear interpolation between order statistics; q in [0,1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

[[nodiscard]] double median(std::span<const double> xs);

/// Pearson product-moment correlation coefficient; 0 when either side is
/// constant or the spans are shorter than two samples.
[[nodiscard]] double pearson_correlation(std::span<const double> xs, std::span<const double> ys);

/// Least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope{0.0};
  double intercept{0.0};
  double r2{0.0};
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Numerically stable online accumulator (Welford). Mergeable.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // unbiased
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

}  // namespace vstream::stats
