#include "stats/timeseries.hpp"

#include <cmath>
#include <stdexcept>

namespace vstream::stats {

RateBinner::RateBinner(double t0, double t1, double dt) : t0_{t0}, dt_{dt} {
  if (dt <= 0.0) throw std::invalid_argument{"RateBinner: dt must be positive"};
  if (t1 <= t0) throw std::invalid_argument{"RateBinner: t1 must exceed t0"};
  const auto bins = static_cast<std::size_t>(std::ceil((t1 - t0) / dt));
  sums_.assign(bins, 0.0);
}

void RateBinner::add(double t, double amount) {
  if (t < t0_) return;
  const auto i = static_cast<std::size_t>((t - t0_) / dt_);
  if (i >= sums_.size()) return;
  sums_[i] += amount;
}

TimeSeries RateBinner::series() const {
  TimeSeries ts;
  ts.t0 = t0_;
  ts.dt = dt_;
  ts.values.reserve(sums_.size());
  for (const double s : sums_) ts.values.push_back(s / dt_);
  return ts;
}

std::vector<double> autocorrelation(std::span<const double> xs, std::size_t max_lag) {
  if (xs.size() < 4) return {};
  const auto n = xs.size();
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  if (var <= 0.0) return {};

  max_lag = std::min(max_lag, n - 1);
  std::vector<double> out;
  out.reserve(max_lag + 1);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double s = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) s += (xs[i] - mean) * (xs[i + k] - mean);
    out.push_back(s / var);
  }
  return out;
}

std::size_t dominant_period_bins(std::span<const double> autocorr, double threshold) {
  if (autocorr.size() < 3) return 0;
  // First local maximum after the zero-lag peak that clears the threshold.
  for (std::size_t k = 1; k + 1 < autocorr.size(); ++k) {
    if (autocorr[k] > threshold && autocorr[k] >= autocorr[k - 1] &&
        autocorr[k] >= autocorr[k + 1] && k > 1) {
      return k;
    }
  }
  return 0;
}

}  // namespace vstream::stats
