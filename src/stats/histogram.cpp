#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vstream::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_{lo}, hi_{hi} {
  if (bins == 0) throw std::invalid_argument{"Histogram: need at least one bin"};
  if (hi <= lo) throw std::invalid_argument{"Histogram: hi must exceed lo"};
  counts_.assign(bins, 0);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / width_);
  ++counts_[std::min(i, counts_.size() - 1)];
}

void Histogram::add_all(std::span<const double> xs) {
  for (const double x : xs) add(x);
}

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::mode() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return bin_center(static_cast<std::size_t>(it - counts_.begin()));
}

std::string Histogram::render(std::size_t bar_width) const {
  const std::uint64_t peak = counts_.empty()
                                 ? 0
                                 : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                             static_cast<double>(peak) *
                                             static_cast<double>(bar_width));
    std::snprintf(line, sizeof line, "%12.4g | %-*s %llu\n", bin_center(i),
                  static_cast<int>(bar_width), std::string(bar, '#').c_str(),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

}  // namespace vstream::stats
