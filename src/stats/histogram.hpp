// Fixed-width histogram with textual rendering.
//
// Used by benches to show block-size and rate distributions as ASCII bars
// next to the CDF tables, and by tests to locate distribution modes (e.g.
// the 64 kB dominant Flash block size).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace vstream::stats {

class Histogram {
 public:
  /// Bins cover [lo, hi) in `bins` equal widths, plus under/overflow bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_in_bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Centre x-value of bin i.
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] double bin_width() const { return width_; }

  /// Centre of the most populated bin (the distribution's mode).
  [[nodiscard]] double mode() const;

  /// Multi-line ASCII rendering, one bar per bin.
  [[nodiscard]] std::string render(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_{0};
  std::uint64_t overflow_{0};
  std::uint64_t total_{0};
};

}  // namespace vstream::stats
