#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vstream::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"stats::min: empty sample"};
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument{"stats::max: empty sample"};
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument{"stats::quantile: empty sample"};
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"stats::quantile: q outside [0,1]"};
  std::vector<double> sorted{xs.begin(), xs.end()};
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument{"stats::pearson_correlation: size mismatch"};
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument{"stats::linear_fit: size mismatch"};
  LinearFit fit;
  if (xs.size() < 2) return fit;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 0.0;
  return fit;
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace vstream::stats
