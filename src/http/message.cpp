#include "http/message.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace vstream::http {
namespace {

constexpr const char* kCrlf = "\r\n";

std::uint64_t to_u64(std::string_view s, const char* what) {
  std::uint64_t v{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument{std::string{"http: bad number in "} + what};
  }
  return v;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) s.remove_suffix(1);
  return s;
}

/// Split header block into lines; returns first line and fills headers.
std::string parse_headers(const std::string& text,
                          std::map<std::string, std::string>& headers) {
  std::istringstream in{text};
  std::string first;
  if (!std::getline(in, first)) throw std::invalid_argument{"http: empty message"};
  while (!first.empty() && first.back() == '\r') first.pop_back();

  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string::npos) throw std::invalid_argument{"http: malformed header line"};
    headers[std::string{trim(std::string_view{line}.substr(0, colon))}] =
        std::string{trim(std::string_view{line}.substr(colon + 1))};
  }
  return first;
}

ByteRange parse_byte_range(std::string_view spec, const char* what) {
  // Accept "bytes=start-end" (request) or "bytes start-end/total" (response).
  const auto eq = spec.find('=');
  const auto sp = spec.find(' ');
  std::string_view rest = spec;
  if (eq != std::string_view::npos) {
    rest = spec.substr(eq + 1);
  } else if (sp != std::string_view::npos) {
    rest = spec.substr(sp + 1);
  }
  const auto slash = rest.find('/');
  if (slash != std::string_view::npos) rest = rest.substr(0, slash);
  const auto dash = rest.find('-');
  if (dash == std::string_view::npos) throw std::invalid_argument{std::string{"http: bad "} + what};
  return ByteRange{to_u64(trim(rest.substr(0, dash)), what),
                   to_u64(trim(rest.substr(dash + 1)), what)};
}

}  // namespace

std::string reason_for_status(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 206:
      return "Partial Content";
    case 404:
      return "Not Found";
    case 416:
      return "Range Not Satisfiable";
    default:
      return "Unknown";
  }
}

std::string HttpRequest::serialize() const {
  std::ostringstream out;
  out << method << ' ' << target << " HTTP/1.1" << kCrlf;
  out << "Host: " << host << kCrlf;
  if (range.has_value()) {
    out << "Range: bytes=" << range->start << '-' << range->end << kCrlf;
  }
  for (const auto& [k, v] : headers) out << k << ": " << v << kCrlf;
  out << kCrlf;
  return out.str();
}

std::uint64_t HttpRequest::wire_size() const { return serialize().size(); }

HttpRequest HttpRequest::parse(const std::string& text) {
  HttpRequest req;
  const std::string first = parse_headers(text, req.headers);
  std::istringstream line{first};
  std::string version;
  if (!(line >> req.method >> req.target >> version) || version.rfind("HTTP/", 0) != 0) {
    throw std::invalid_argument{"http: malformed request line"};
  }
  if (auto it = req.headers.find("Host"); it != req.headers.end()) {
    req.host = it->second;
    req.headers.erase(it);
  }
  if (auto it = req.headers.find("Range"); it != req.headers.end()) {
    req.range = parse_byte_range(it->second, "Range");
    req.headers.erase(it);
  }
  return req;
}

std::string HttpResponse::serialize() const {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << ' ' << reason << kCrlf;
  out << "Content-Length: " << content_length << kCrlf;
  if (content_range.has_value()) {
    out << "Content-Range: bytes " << content_range->start << '-' << content_range->end << "/*"
        << kCrlf;
  }
  for (const auto& [k, v] : headers) out << k << ": " << v << kCrlf;
  out << kCrlf;
  return out.str();
}

std::uint64_t HttpResponse::wire_size() const { return serialize().size(); }

HttpResponse HttpResponse::parse(const std::string& text) {
  HttpResponse res;
  const std::string first = parse_headers(text, res.headers);
  std::istringstream line{first};
  std::string version;
  int status{};
  if (!(line >> version >> status) || version.rfind("HTTP/", 0) != 0) {
    throw std::invalid_argument{"http: malformed status line"};
  }
  res.status = status;
  std::string reason;
  std::getline(line, reason);
  res.reason = std::string{trim(reason)};
  if (auto it = res.headers.find("Content-Length"); it != res.headers.end()) {
    res.content_length = to_u64(it->second, "Content-Length");
    res.headers.erase(it);
  }
  if (auto it = res.headers.find("Content-Range"); it != res.headers.end()) {
    res.content_range = parse_byte_range(it->second, "Content-Range");
    res.headers.erase(it);
  }
  return res;
}

}  // namespace vstream::http
