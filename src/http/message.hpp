// Minimal HTTP/1.1 message model.
//
// Requests and response heads are serialised to real header text (so sizes
// on the wire are right and parsing is honest), transmitted as counted bytes
// over the simulated TCP, and surfaced at the peer as tags carrying the
// parsed message. Range requests are first-class: the iPad YouTube client
// and Netflix fetch video as successive ranged GETs (paper §5.1.3, §5.2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace vstream::http {

/// Inclusive byte range, as in `Range: bytes=start-end`.
struct ByteRange {
  std::uint64_t start{0};
  std::uint64_t end{0};

  [[nodiscard]] std::uint64_t length() const { return end - start + 1; }
  friend bool operator==(const ByteRange&, const ByteRange&) = default;
};

struct HttpRequest {
  std::string method{"GET"};
  std::string target{"/"};
  std::string host{"example.com"};
  std::map<std::string, std::string> headers;
  std::optional<ByteRange> range;

  /// Render the request head as HTTP/1.1 text (ending in CRLFCRLF).
  [[nodiscard]] std::string serialize() const;
  /// Number of bytes `serialize()` would produce.
  [[nodiscard]] std::uint64_t wire_size() const;

  [[nodiscard]] static HttpRequest parse(const std::string& text);
};

struct HttpResponse {
  int status{200};
  std::string reason{"OK"};
  std::map<std::string, std::string> headers;
  std::uint64_t content_length{0};
  std::optional<ByteRange> content_range;  ///< present on 206 responses

  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] std::uint64_t wire_size() const;

  [[nodiscard]] static HttpResponse parse(const std::string& text);
};

[[nodiscard]] std::string reason_for_status(int status);

}  // namespace vstream::http
