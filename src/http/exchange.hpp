// HTTP request/response exchange over a simulated TCP connection.
//
// `HttpServer` attaches to the server endpoint of a tcp::Connection, parses
// incoming requests (delivered as tags) and hands each to a handler with a
// `Responder` the handler uses to emit the response head and then body bytes
// — possibly gradually, which is exactly how paced streaming servers work.
//
// `HttpClient` is deliberately thin: it serialises and sends requests. Body
// consumption is owned by the streaming client policies (greedy vs pull
// throttled), which read from the endpoint themselves; response heads
// surface as `HttpResponse` tags in those reads.
#pragma once

#include <functional>
#include <memory>

#include "http/message.hpp"
#include "tcp/connection.hpp"

namespace vstream::http {

/// Emits one response on the server endpoint. The handler may keep the
/// responder and deliver body bytes over time (paced streaming).
class Responder {
 public:
  Responder(tcp::Endpoint& endpoint, std::uint64_t body_length);

  /// Send the status line and headers. Must be called exactly once, first.
  void send_head(HttpResponse head);

  /// Send `bytes` of body (clamped to what remains). Returns bytes queued.
  std::uint64_t send_body(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t body_remaining() const { return remaining_; }
  [[nodiscard]] bool head_sent() const { return head_sent_; }
  [[nodiscard]] bool complete() const { return head_sent_ && remaining_ == 0; }

 private:
  tcp::Endpoint& endpoint_;
  std::uint64_t remaining_;
  bool head_sent_{false};
};

class HttpServer {
 public:
  /// Creates the responder for one request once the handler knows the body
  /// length (e.g. the video size, or the requested range's length).
  using MakeResponder = std::function<std::shared_ptr<Responder>(std::uint64_t body_length)>;

  /// `handler(request, make_responder)` is invoked per parsed request; the
  /// handler constructs its responder and may keep it to pace the body.
  using Handler = std::function<void(const HttpRequest&, const MakeResponder&)>;

  HttpServer(tcp::Endpoint& endpoint, Handler handler);

  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }

 private:
  void on_readable();

  tcp::Endpoint& endpoint_;
  Handler handler_;
  std::uint64_t requests_{0};
};

class HttpClient {
 public:
  explicit HttpClient(tcp::Endpoint& endpoint) : endpoint_{endpoint} {}

  /// Serialise and transmit a request. The response head will arrive as an
  /// HttpResponse tag in the caller's endpoint reads.
  void send_request(const HttpRequest& request);

  [[nodiscard]] std::uint64_t requests_sent() const { return requests_; }

 private:
  tcp::Endpoint& endpoint_;
  std::uint64_t requests_{0};
};

/// Convenience: make a GET for a video resource, optionally ranged.
[[nodiscard]] HttpRequest make_video_request(const std::string& video_id,
                                             std::optional<ByteRange> range = {});

}  // namespace vstream::http
