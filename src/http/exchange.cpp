#include "http/exchange.hpp"

#include <stdexcept>

namespace vstream::http {

Responder::Responder(tcp::Endpoint& endpoint, std::uint64_t body_length)
    : endpoint_{endpoint}, remaining_{body_length} {}

void Responder::send_head(HttpResponse head) {
  if (head_sent_) throw std::logic_error{"Responder: head already sent"};
  head.reason = reason_for_status(head.status);
  const std::uint64_t size = head.wire_size();
  endpoint_.send(size, std::move(head));
  head_sent_ = true;
}

std::uint64_t Responder::send_body(std::uint64_t bytes) {
  if (!head_sent_) throw std::logic_error{"Responder: body before head"};
  const std::uint64_t n = std::min(bytes, remaining_);
  if (n > 0) {
    endpoint_.send(n);
    remaining_ -= n;
  }
  return n;
}

HttpServer::HttpServer(tcp::Endpoint& endpoint, Handler handler)
    : endpoint_{endpoint}, handler_{std::move(handler)} {
  if (!handler_) throw std::invalid_argument{"HttpServer: handler required"};
  endpoint_.set_on_readable([this] { on_readable(); });
}

void HttpServer::on_readable() {
  // Drain request bytes; parsed requests arrive as tags.
  auto result = endpoint_.read(UINT64_MAX);
  const MakeResponder make = [this](std::uint64_t body_length) {
    return std::make_shared<Responder>(endpoint_, body_length);
  };
  for (auto& tag : result.tags) {
    if (tag.type() != typeid(HttpRequest)) continue;
    const auto request = std::any_cast<HttpRequest>(std::move(tag));
    ++requests_;
    handler_(request, make);
  }
}

void HttpClient::send_request(const HttpRequest& request) {
  endpoint_.send(request.wire_size(), request);
  ++requests_;
}

HttpRequest make_video_request(const std::string& video_id, std::optional<ByteRange> range) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/videoplayback?id=" + video_id;
  req.host = "cdn.videostream.example";
  req.headers["User-Agent"] = "vstream/1.0";
  req.range = range;
  return req;
}

}  // namespace vstream::http
