// Invariant contracts for the simulator's protocol and accounting state.
//
// The macros guard properties that, when silently violated, corrupt every
// reproduced figure downstream (a negative cwnd, drifting sequence-space
// accounting, a clock that runs backwards). They throw `ContractViolation`
// with a file:line payload in checked builds and compile to nothing when
// `VSTREAM_CHECK_LEVEL` is 0, so release binaries pay zero cost while CI
// runs with the contracts armed.
//
//   VSTREAM_PRECONDITION(cond, msg)   -- caller handed us a valid request
//   VSTREAM_INVARIANT(cond, msg)      -- internal state is self-consistent
//   VSTREAM_POSTCONDITION(cond, msg)  -- we are about to hand back a valid result
//
// At level 0 the condition is placed in an unevaluated sizeof() context:
// side effects never run, but variables referenced only by contracts still
// count as used, so `-Werror=unused-*` stays quiet in both build flavours.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

#ifndef VSTREAM_CHECK_LEVEL
#define VSTREAM_CHECK_LEVEL 1
#endif

namespace vstream::check {

enum class ContractKind : std::uint8_t { kPrecondition, kInvariant, kPostcondition };

[[nodiscard]] std::string_view to_string(ContractKind kind);

/// Thrown on contract violation in checked builds. `what()` carries the
/// kind, the stringified condition, the message, and the file:line payload.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(ContractKind kind, std::string_view condition, std::string_view message,
                    std::string_view file, int line);

  [[nodiscard]] ContractKind kind() const { return kind_; }
  [[nodiscard]] const std::string& condition() const { return condition_; }
  [[nodiscard]] const std::string& file() const { return file_; }
  [[nodiscard]] int line() const { return line_; }

 private:
  ContractKind kind_;
  std::string condition_;
  std::string file_;
  int line_;
};

/// Total contract evaluations that failed over the process lifetime. Only
/// moves in checked builds; lets tests prove the release flavour is inert.
[[nodiscard]] std::uint64_t violations_raised();

/// Thread-local hook invoked with the fully-formed violation just before
/// `detail::fail` throws it. The obs flight recorder installs one to dump
/// its event tail at the moment of failure. Per-thread on purpose: under
/// runner::ParallelSweep each worker runs its own world, and a recorder
/// must only react to its own world's contracts. Returns the hook it
/// replaced so scoped users can restore it.
using ViolationHook = std::function<void(const ContractViolation&)>;
ViolationHook set_violation_hook(ViolationHook hook);

namespace detail {
[[noreturn]] void fail(ContractKind kind, const char* condition, const char* message,
                       const char* file, int line);
}  // namespace detail

}  // namespace vstream::check

#if VSTREAM_CHECK_LEVEL >= 1

#define VSTREAM_CONTRACT_IMPL(kind, cond, msg)                                          \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      ::vstream::check::detail::fail((kind), #cond, (msg), __FILE__, __LINE__);         \
    }                                                                                   \
  } while (false)

#else  // contracts compiled out: condition kept in an unevaluated context

#define VSTREAM_CONTRACT_IMPL(kind, cond, msg) \
  static_cast<void>(sizeof((cond) ? 1 : 0))

#endif

#define VSTREAM_PRECONDITION(cond, msg) \
  VSTREAM_CONTRACT_IMPL(::vstream::check::ContractKind::kPrecondition, cond, msg)
#define VSTREAM_INVARIANT(cond, msg) \
  VSTREAM_CONTRACT_IMPL(::vstream::check::ContractKind::kInvariant, cond, msg)
#define VSTREAM_POSTCONDITION(cond, msg) \
  VSTREAM_CONTRACT_IMPL(::vstream::check::ContractKind::kPostcondition, cond, msg)
