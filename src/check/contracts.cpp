#include "check/contracts.hpp"

#include <atomic>

namespace vstream::check {

namespace {
std::atomic<std::uint64_t> g_violations{0};
thread_local ViolationHook t_violation_hook;
}  // namespace

ViolationHook set_violation_hook(ViolationHook hook) {
  ViolationHook previous = std::move(t_violation_hook);
  t_violation_hook = std::move(hook);
  return previous;
}

std::string_view to_string(ContractKind kind) {
  switch (kind) {
    case ContractKind::kPrecondition:
      return "precondition";
    case ContractKind::kInvariant:
      return "invariant";
    case ContractKind::kPostcondition:
      return "postcondition";
  }
  return "?";
}

ContractViolation::ContractViolation(ContractKind kind, std::string_view condition,
                                     std::string_view message, std::string_view file, int line)
    : std::logic_error{std::string{to_string(kind)} + " violated at " + std::string{file} + ":" +
                       std::to_string(line) + ": (" + std::string{condition} + ") — " +
                       std::string{message}},
      kind_{kind},
      condition_{condition},
      file_{file},
      line_{line} {}

std::uint64_t violations_raised() { return g_violations.load(std::memory_order_relaxed); }

namespace detail {

void fail(ContractKind kind, const char* condition, const char* message, const char* file,
          int line) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  ContractViolation violation{kind, condition, message, file, line};
  if (t_violation_hook) t_violation_hook(violation);
  throw violation;
}

}  // namespace detail

}  // namespace vstream::check
