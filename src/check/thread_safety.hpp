// Clang thread-safety annotation macros (-Wthread-safety).
//
// The sweep engine's concurrency story is mostly *partition*, not locks:
// each worker owns its session worlds outright and the merge runs serially
// on the caller's thread. The few places that do share state under a mutex
// annotate it with these macros so clang's thread-safety analysis proves,
// at compile time, that every access happens with the right lock held.
//
// Annotation policy (DESIGN.md §12):
//   - Lock-protected state is annotated statically: VSTREAM_GUARDED_BY on
//     the data, VSTREAM_REQUIRES / VSTREAM_EXCLUDES on the accessors.
//   - Partition-protected state (per-worker SweepProfiler cells, the
//     shared-nothing session worlds themselves) cannot be expressed in the
//     capability model; it is documented at the declaration and verified
//     dynamically by the CI `tsan` job instead.
//
// The attributes are a clang extension: under GCC (the default dev
// toolchain) every macro expands to nothing, and the analysis runs in the
// CI static job's clang build with -Wthread-safety (see VSTREAM_THREAD_SAFETY
// in CMakeLists.txt). Mirrors the abseil thread_annotations.h macro set.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define VSTREAM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define VSTREAM_THREAD_ANNOTATION(x)
#endif

/// The annotated data member may only be read or written while holding the
/// named capability (mutex).
#define VSTREAM_GUARDED_BY(x) VSTREAM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-to-data variant: the pointer itself is free, the pointee is
/// guarded.
#define VSTREAM_PT_GUARDED_BY(x) VSTREAM_THREAD_ANNOTATION(pt_guarded_by(x))

/// The annotated function may only be called while holding the capability.
#define VSTREAM_REQUIRES(...) \
  VSTREAM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The annotated function must NOT be called while holding the capability
/// (it acquires it itself; calling with it held would deadlock).
#define VSTREAM_EXCLUDES(...) \
  VSTREAM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The annotated function acquires / releases the capability.
#define VSTREAM_ACQUIRE(...) \
  VSTREAM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define VSTREAM_RELEASE(...) \
  VSTREAM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Marks a type as a capability (std::mutex already is one in clang's
/// builtin model; use this for wrapper types).
#define VSTREAM_CAPABILITY(x) VSTREAM_THREAD_ANNOTATION(capability(x))

/// RAII types whose constructor acquires and destructor releases.
#define VSTREAM_SCOPED_CAPABILITY VSTREAM_THREAD_ANNOTATION(scoped_lockable)

/// Escape hatch for functions the analysis cannot model; every use must
/// carry a comment naming the partition or protocol that makes it safe.
#define VSTREAM_NO_THREAD_SAFETY_ANALYSIS \
  VSTREAM_THREAD_ANNOTATION(no_thread_safety_analysis)
