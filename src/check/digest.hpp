// Order-sensitive state digest for determinism auditing.
//
// A `StateDigest` folds a stream of 64-bit words through FNV-1a. The
// simulator mixes every dispatched event (timestamp + FIFO sequence) and
// instrumented components mix state snapshots (TCP sender/receiver marks),
// so two runs of the same scenario with the same seed must produce the
// same value. Divergence pinpoints nondeterminism — unordered-container
// iteration feeding the event queue, uninitialized reads, address-dependent
// ordering — that sanitizers do not flag.
//
// The digest is intentionally order-sensitive: mixing {a, b} and {b, a}
// yields different values, which is exactly what an event-order audit needs.
#pragma once

#include <cstdint>
#include <string_view>

namespace vstream::check {

class StateDigest {
 public:
  /// FNV-1a 64-bit offset basis / prime (the reference parameters).
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr StateDigest() = default;

  /// Fold one 64-bit word, byte by byte, little-endian.
  constexpr void mix(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (word >> (8U * static_cast<unsigned>(i))) & 0xFFU;
      hash_ *= kPrime;
    }
    ++words_;
  }

  constexpr void mix_signed(std::int64_t word) { mix(static_cast<std::uint64_t>(word)); }

  /// Fold a label (scenario name, endpoint label) into the stream.
  constexpr void mix(std::string_view bytes) {
    for (const char c : bytes) {
      hash_ ^= static_cast<std::uint8_t>(c);
      hash_ *= kPrime;
    }
    ++words_;
  }

  [[nodiscard]] constexpr std::uint64_t value() const { return hash_; }
  /// Number of mix() calls folded in — a cheap cross-check that twin runs
  /// digested the same number of observations, not just the same hash.
  [[nodiscard]] constexpr std::uint64_t words_mixed() const { return words_; }

  constexpr void reset() {
    hash_ = kOffsetBasis;
    words_ = 0;
  }

 private:
  std::uint64_t hash_{kOffsetBasis};
  std::uint64_t words_{0};
};

}  // namespace vstream::check
