// TCP endpoint tuning knobs.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace vstream::tcp {

struct TcpOptions {
  std::uint32_t mss{1460};

  /// Server-host tag stamped on every segment of the connection (0 = video
  /// CDN); lets trace analyses separate video from auxiliary traffic the
  /// way the paper filtered by server address.
  std::uint8_t host_tag{0};

  /// Receive buffer capacity used for window advertisements. Client pull
  /// throttling (IE/Chrome HTML5) works through this: the advertised window
  /// collapses to zero when the application stops reading.
  std::uint64_t recv_buffer_bytes{256 * 1024};

  /// Initial congestion window in segments (2011-era CDN servers commonly
  /// used 10; RFC 3390 allows 4).
  std::uint32_t initial_cwnd_segments{10};

  /// Delayed-ACK policy: ack every second full-size segment, or after the
  /// timeout, whichever first. Out-of-order data is acked immediately.
  bool delayed_ack{true};
  sim::Duration delayed_ack_timeout{sim::Duration::millis(40)};

  /// RFC 5681 §4.1: restart the congestion window after an idle period of
  /// one RTO. The paper observes (Fig 9) that streaming servers do NOT do
  /// this — blocks are sent back-to-back without an ack clock — so the
  /// default is off; the Fig 9 ablation turns it on.
  bool reset_cwnd_after_idle{false};

  sim::Duration initial_rto{sim::Duration::seconds(1.0)};
  sim::Duration min_rto{sim::Duration::millis(200)};
  sim::Duration max_rto{sim::Duration::seconds(60.0)};

  /// Zero-window probe interval (persist timer base).
  sim::Duration persist_interval{sim::Duration::millis(500)};
};

/// Per-endpoint transfer statistics, used by the analysis layer and tests.
struct TcpStats {
  std::uint64_t bytes_sent{0};          ///< payload bytes, first transmissions
  std::uint64_t bytes_retransmitted{0}; ///< payload bytes resent
  std::uint64_t segments_sent{0};
  std::uint64_t segments_retransmitted{0};
  std::uint64_t fast_retransmits{0};
  std::uint64_t timeouts{0};
  std::uint64_t acks_received{0};
  std::uint64_t bytes_received{0};  ///< in-order payload bytes delivered
  std::uint64_t dup_acks_received{0};
  double last_srtt_s{0.0};

  /// Receive-side flow-control starvation: episodes where this endpoint's
  /// advertised window collapsed to zero (one per contiguous run of
  /// zero-window advertisements on the wire) and the total time spent
  /// there. Matches what `analysis::count_zero_window_episodes` derives
  /// from a loss-free capture, but without any trace re-parsing.
  std::uint64_t zero_window_episodes{0};
  double zero_window_total_s{0.0};

  [[nodiscard]] double retransmission_fraction() const {
    const auto total = bytes_sent + bytes_retransmitted;
    return total == 0 ? 0.0
                      : static_cast<double>(bytes_retransmitted) / static_cast<double>(total);
  }
};

}  // namespace vstream::tcp
