// One side of a simulated TCP connection.
//
// Implements the sender and receiver state machines: three-way handshake,
// slow start / congestion avoidance, NewReno fast retransmit and recovery,
// RFC 6298 retransmission timeouts with Karn's algorithm, delayed ACKs,
// receive-window flow control with zero-window persistence, out-of-order
// reassembly, and the optional RFC 5681 idle congestion-window restart that
// the paper's Fig 9 discussion hinges on.
//
// Sequence space: the SYN occupies seq 0, application byte k occupies seq
// k+1, and the FIN occupies seq 1+stream_length.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/segment.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"
#include "tcp/options.hpp"
#include "tcp/tag_channel.hpp"

namespace vstream::obs {
class Counter;
}

namespace vstream::tcp {

enum class TcpState : std::uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinSent,
  kFinished,
};

[[nodiscard]] std::string to_string(TcpState s);

class Endpoint {
 public:
  struct ReadResult {
    std::uint64_t bytes{0};
    std::vector<std::any> tags;
    bool eof{false};
  };

  Endpoint(sim::Simulator& sim, std::uint64_t connection_id, TcpOptions options,
           std::string label);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Wire the transmit side to a link and the tag channels (ours to write,
  /// the peer's to read). Must be called before connect()/listen().
  void attach(net::Link& tx_link, std::shared_ptr<TagChannel> tx_tags,
              std::shared_ptr<TagChannel> rx_tags);

  /// Active open (client side): send SYN.
  void connect();
  /// Passive open (server side): await SYN.
  void listen();

  /// Deliver a segment arriving from the network (called by the demux).
  void on_segment(const net::TcpSegment& segment);

  // ---- application send side ----

  /// Queue `bytes` of application data; `tag` (if any) is attached at the
  /// end of this write and surfaces at the peer once it has read past it.
  void send(std::uint64_t bytes, std::any tag = {});

  /// Half-close: a FIN follows the last queued byte.
  void close();

  /// Bytes accepted from the application but not yet acked by the peer.
  [[nodiscard]] std::uint64_t unacked_bytes() const;
  /// Bytes accepted from the application but not yet transmitted once.
  [[nodiscard]] std::uint64_t untransmitted_bytes() const;

  // ---- application receive side ----

  /// Read up to `max_bytes` of in-order data, collecting any tags.
  ReadResult read(std::uint64_t max_bytes);
  /// In-order bytes ready for reading.
  [[nodiscard]] std::uint64_t available() const { return unread_bytes_; }
  /// Total application bytes read so far.
  [[nodiscard]] std::uint64_t total_read() const { return total_read_; }
  /// True once the peer's FIN has been received and all data read.
  [[nodiscard]] bool at_eof() const;

  // ---- callbacks ----
  void set_on_established(std::function<void()> cb) { on_established_ = std::move(cb); }
  void set_on_readable(std::function<void()> cb) { on_readable_ = std::move(cb); }
  /// Fired when the peer's FIN is received (stream fully delivered).
  void set_on_peer_fin(std::function<void()> cb) { on_peer_fin_ = std::move(cb); }

  // ---- introspection ----
  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] const TcpStats& stats() const { return stats_; }
  [[nodiscard]] const TcpOptions& options() const { return options_; }
  [[nodiscard]] std::uint64_t cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] std::uint64_t ssthresh_bytes() const { return ssthresh_; }
  [[nodiscard]] std::uint64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::uint64_t advertised_window() const;
  [[nodiscard]] std::uint64_t peer_window() const { return peer_wnd_; }
  [[nodiscard]] sim::Duration current_rto() const { return rto_; }
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] std::uint64_t connection_id() const { return connection_id_; }

 private:
  // -- sending machinery --
  void transmit(net::TcpSegment segment);
  void try_send();
  void send_pure_ack();
  void retransmit_front();
  /// SACK-aware: retransmit the first un-SACKed hole above the recovery
  /// high-water mark. Returns false when there is nothing left to resend.
  bool retransmit_next_hole();
  void merge_sacked(std::uint64_t start, std::uint64_t end);
  void prune_sacked();
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void arm_persist();
  void on_persist();
  void maybe_idle_restart();
  [[nodiscard]] std::uint64_t send_limit() const;
  [[nodiscard]] std::uint64_t seq_limit() const;  // one past last sendable seq

  // -- receiving machinery --
  void on_segment_impl(const net::TcpSegment& segment);
  void handle_ack(const net::TcpSegment& segment);
  void handle_ack_impl(const net::TcpSegment& segment, bool window_update);
  void handle_data(const net::TcpSegment& segment);
  void schedule_ack(bool immediate);
  void deliver_in_order();
  void insert_out_of_order(std::uint64_t seq, std::uint64_t len);
  void recount_out_of_order();
  void note_peer_window(const net::TcpSegment& segment);

  // -- congestion control --
  void on_new_ack(std::uint64_t acked_bytes, std::uint64_t ack);
  void enter_fast_recovery();
  void sample_rtt(std::uint64_t ack);

  // -- observability --
  /// Check the sequence-space / congestion-control invariants and, when a
  /// determinism digest is attached to the simulator, fold a state snapshot
  /// into it. Called after every segment reception.
  void audit_state();
  /// Emit a `TcpCwndSample` on the world's trace bus (no-op when no sink).
  void probe_cwnd();
  /// Track zero-window advertisement episodes from the window value a
  /// transmitted segment carries.
  void note_advertised_window(std::uint64_t window_bytes);

  sim::Simulator& sim_;
  std::uint64_t connection_id_;
  TcpOptions options_;
  std::string label_;
  net::Link* tx_link_{nullptr};
  std::shared_ptr<TagChannel> tx_tags_;
  std::shared_ptr<TagChannel> rx_tags_;

  TcpState state_{TcpState::kClosed};

  // Send sequence state (seq space: SYN=0, data from 1).
  std::uint64_t snd_una_{0};
  std::uint64_t snd_nxt_{0};
  std::uint64_t snd_max_{0};  ///< highest sequence ever transmitted
  std::uint64_t app_bytes_queued_{0};  ///< total app bytes accepted
  bool fin_queued_{false};
  bool fin_sent_{false};

  // Congestion control.
  std::uint64_t cwnd_{0};
  std::uint64_t ssthresh_{0};
  std::uint32_t dup_acks_{0};
  bool in_fast_recovery_{false};
  std::uint64_t recover_{0};

  // Selective acknowledgements (sender view of receiver holes).
  std::map<std::uint64_t, std::uint64_t> sacked_;  ///< start -> end (exclusive)
  std::uint64_t rexmit_high_{0};  ///< recovery retransmission high-water mark
  /// After an RTO, snd_nxt rolls back to snd_una and the range up to this
  /// mark is re-sent (SACKed runs skipped) under slow start.
  std::uint64_t retransmit_until_{0};

  // RTT estimation / RTO.
  bool have_rtt_sample_{false};
  double srtt_s_{0.0};
  double rttvar_s_{0.0};
  sim::Duration rto_;
  sim::EventHandle rto_timer_;
  std::optional<std::uint64_t> timed_seq_;  ///< seq of the timed segment
  sim::SimTime timed_at_{};
  bool timed_retransmitted_{false};

  // Persist (zero-window probing).
  sim::EventHandle persist_timer_;
  sim::Duration persist_backoff_{};

  // Idle restart bookkeeping.
  sim::SimTime last_transmit_at_{};

  // Receive state.
  std::uint64_t rcv_nxt_{0};
  std::map<std::uint64_t, std::uint64_t> out_of_order_;  ///< seq -> len
  std::uint64_t ooo_bytes_{0};
  std::uint64_t unread_bytes_{0};
  std::uint64_t total_read_{0};
  std::optional<std::uint64_t> peer_fin_seq_;
  bool peer_fin_delivered_{false};
  bool peer_fin_notified_{false};
  std::uint64_t peer_wnd_{0};
  bool peer_wnd_seen_{false};

  // Delayed-ACK state.
  sim::EventHandle delack_timer_;
  std::uint32_t segments_since_ack_{0};
  std::uint64_t last_advertised_wnd_{0};

  TcpStats stats_;

  // Zero-window episode tracking (receive side, wire-visible transitions).
  bool advertising_zero_window_{false};
  sim::SimTime zero_window_since_{};

  /// Loss-recovery episode span: opens on entering fast recovery or on an
  /// RTO, closes at the first forward ACK. Named for how the episode began
  /// ("fast_recovery" / "rto_recovery"); an escalation from fast recovery
  /// to timeout keeps the original span open until recovery completes.
  obs::Span recovery_span_;

  // Cached registry instruments; null when the world runs unobserved.
  obs::Counter* ctr_segments_sent_{nullptr};
  obs::Counter* ctr_segments_retransmitted_{nullptr};
  obs::Counter* ctr_bytes_retransmitted_{nullptr};
  obs::Counter* ctr_timeouts_{nullptr};
  obs::Counter* ctr_fast_retransmits_{nullptr};
  obs::Counter* ctr_zero_window_episodes_{nullptr};

  std::function<void()> on_established_;
  std::function<void()> on_readable_;
  std::function<void()> on_peer_fin_;
};

}  // namespace vstream::tcp
