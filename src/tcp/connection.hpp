// A client<->server TCP connection over a shared Path, plus the Fabric that
// multiplexes many parallel connections onto the path (Netflix and the iPad
// YouTube client open dozens of connections per streaming session).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/path.hpp"
#include "tcp/endpoint.hpp"

namespace vstream::tcp {

class Connection {
 public:
  /// Both endpoints are created immediately; call `open()` to start the
  /// three-way handshake from the client side.
  Connection(sim::Simulator& sim, net::Path& path, std::uint64_t id, TcpOptions client_options,
             TcpOptions server_options);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void open() { client_->connect(); }

  [[nodiscard]] Endpoint& client() { return *client_; }
  [[nodiscard]] Endpoint& server() { return *server_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  std::uint64_t id_;
  std::unique_ptr<Endpoint> client_;
  std::unique_ptr<Endpoint> server_;
};

/// Creates connections over one Path and demultiplexes arriving segments to
/// the right endpoint by connection id. All connections share the two links,
/// so they contend for the same bottleneck.
class Fabric {
 public:
  /// `first_id` seeds the connection-id counter. A private path keeps the
  /// default 1; a shared-bottleneck topology passes
  /// `SharedBottleneck::first_connection_id(client)` so every id carries
  /// the client index in its high 32 bits and the bottleneck router can
  /// demultiplex segments back to the right access leg.
  Fabric(sim::Simulator& sim, net::Path& path, std::uint64_t first_id = 1);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Create (but do not open) a new connection. The server side is put into
  /// listen state automatically. `host` tags every segment with the server
  /// identity (0 = video CDN, 1+ = auxiliary hosts).
  Connection& create_connection(TcpOptions client_options, TcpOptions server_options,
                                std::uint8_t host = 0);

  [[nodiscard]] std::size_t connection_count() const { return connections_.size(); }
  [[nodiscard]] Connection& connection(std::uint64_t id) { return *connections_.at(id); }
  [[nodiscard]] net::Path& path() { return path_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

 private:
  sim::Simulator& sim_;
  net::Path& path_;
  std::uint64_t next_id_{1};
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
};

}  // namespace vstream::tcp
