// Out-of-band application-message tags, keyed by stream offset.
//
// Segments carry byte counts, not contents (the bulk of streaming traffic is
// opaque video payload). Structured application messages — HTTP requests and
// response headers — are attached as *tags* at the stream offset where their
// last byte ends. The receiver collects a tag once its application has read
// past that offset, so delivery order and timing exactly follow the byte
// stream, including retransmission and reordering effects.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <vector>

namespace vstream::tcp {

class TagChannel {
 public:
  /// Attach a tag whose message occupies bytes ending at `end_offset`
  /// (exclusive) in the application stream.
  void attach(std::uint64_t end_offset, std::any tag) {
    tags_[end_offset].push_back(std::move(tag));
  }

  /// Remove and return every tag with end offset <= `read_upto`.
  [[nodiscard]] std::vector<std::any> collect(std::uint64_t read_upto) {
    std::vector<std::any> out;
    auto it = tags_.begin();
    while (it != tags_.end() && it->first <= read_upto) {
      for (auto& t : it->second) out.push_back(std::move(t));
      it = tags_.erase(it);
    }
    return out;
  }

  [[nodiscard]] bool empty() const { return tags_.empty(); }

 private:
  std::map<std::uint64_t, std::vector<std::any>> tags_;
};

}  // namespace vstream::tcp
