#include "tcp/endpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/digest.hpp"
#include "obs/context.hpp"

namespace vstream::tcp {

using net::TcpFlag;
using net::TcpSegment;

namespace {
constexpr double kRttGranularityS = 0.010;  // RFC 6298 clock granularity G
}

std::string to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed:
      return "Closed";
    case TcpState::kListen:
      return "Listen";
    case TcpState::kSynSent:
      return "SynSent";
    case TcpState::kSynReceived:
      return "SynReceived";
    case TcpState::kEstablished:
      return "Established";
    case TcpState::kFinSent:
      return "FinSent";
    case TcpState::kFinished:
      return "Finished";
  }
  return "?";
}

Endpoint::Endpoint(sim::Simulator& sim, std::uint64_t connection_id, TcpOptions options,
                   std::string label)
    : sim_{sim},
      connection_id_{connection_id},
      options_{options},
      label_{std::move(label)},
      rto_{options.initial_rto},
      persist_backoff_{options.persist_interval} {
  cwnd_ = static_cast<std::uint64_t>(options_.initial_cwnd_segments) * options_.mss;
  ssthresh_ = std::numeric_limits<std::uint64_t>::max() / 4;
  last_advertised_wnd_ = options_.recv_buffer_bytes;

  // Cache registry instruments once; the hot paths then pay one null check.
  if (obs::ObsContext* obs = sim_.obs()) {
    auto& reg = obs->metrics();
    ctr_segments_sent_ = &reg.counter("tcp.segments_sent");
    ctr_segments_retransmitted_ = &reg.counter("tcp.segments_retransmitted");
    ctr_bytes_retransmitted_ = &reg.counter("tcp.bytes_retransmitted");
    ctr_timeouts_ = &reg.counter("tcp.timeouts");
    ctr_fast_retransmits_ = &reg.counter("tcp.fast_retransmits");
    ctr_zero_window_episodes_ = &reg.counter("tcp.zero_window_episodes");
  }
}

// ---------------------------------------------------------------- probes

void Endpoint::audit_state() {
  // Sequence-space conservation: the unacked range is exactly what is in
  // flight, and nothing transmitted may exceed the bytes the application
  // queued (+ SYN and FIN marks). A violation here means the retransmit
  // accounting drifted — the silent corruption this layer exists to catch.
  VSTREAM_INVARIANT(snd_una_ <= snd_nxt_, "cumulative ACK point may not pass snd_nxt");
  VSTREAM_INVARIANT(snd_nxt_ <= snd_max_ || snd_max_ == 0,
                    "snd_nxt beyond the highest sequence ever transmitted");
  VSTREAM_INVARIANT(snd_max_ <= seq_limit(), "transmitted past the queued sequence space");
  VSTREAM_INVARIANT(sacked_.empty() || (sacked_.begin()->first >= snd_una_ &&
                                        sacked_.rbegin()->second <= snd_max_),
                    "SACK scoreboard strayed outside the unacked transmitted range");
  if (state_ == TcpState::kEstablished || state_ == TcpState::kFinSent) {
    VSTREAM_INVARIANT(cwnd_ >= options_.mss, "cwnd collapsed below one MSS");
    VSTREAM_INVARIANT(ssthresh_ >= 2ULL * options_.mss, "ssthresh below the RFC 5681 floor");
  }
  // Receive-side reassembly: buffered out-of-order runs live strictly above
  // the next expected byte, and their byte count matches the interval map.
  VSTREAM_INVARIANT(out_of_order_.empty() || out_of_order_.begin()->first > rcv_nxt_,
                    "out-of-order run at or below rcv_nxt was never delivered");
  VSTREAM_INVARIANT(ooo_bytes_ == 0 || !out_of_order_.empty(),
                    "out-of-order byte count out of sync with the interval map");

  if (check::StateDigest* digest = sim_.digest()) {
    digest->mix(connection_id_);
    digest->mix(static_cast<std::uint64_t>(state_));
    digest->mix(snd_una_);
    digest->mix(snd_nxt_);
    digest->mix(cwnd_);
    digest->mix(ssthresh_);
    digest->mix(rcv_nxt_);
    digest->mix(unread_bytes_);
  }
}

void Endpoint::probe_cwnd() {
  obs::ObsContext* obs = sim_.obs();
  if (obs == nullptr || !obs->trace().active()) return;
  obs::TcpCwndSample s;
  s.t_s = sim_.now().to_seconds();
  s.connection_id = connection_id_;
  s.endpoint = label_;
  s.cwnd = cwnd_;
  s.ssthresh = ssthresh_;
  s.rwnd = peer_wnd_;
  s.adv_wnd = last_advertised_wnd_;
  s.rto_s = rto_.to_seconds();
  s.bytes_in_flight = bytes_in_flight();
  obs->trace().emit(s);
}

void Endpoint::note_advertised_window(std::uint64_t window_bytes) {
  const bool was_zero = advertising_zero_window_;
  last_advertised_wnd_ = window_bytes;
  // Sample at our own window's zero-crossings too: the sender-side sample
  // coincides with the captured segment, so a JSONL trace reconstructs the
  // wire's rwnd-zero episodes even when the segment is still in flight at
  // the capture cutoff.
  if ((window_bytes == 0) != was_zero) probe_cwnd();
  if (window_bytes == 0 && !advertising_zero_window_) {
    advertising_zero_window_ = true;
    zero_window_since_ = sim_.now();
    ++stats_.zero_window_episodes;
    if (ctr_zero_window_episodes_ != nullptr) ctr_zero_window_episodes_->inc();
  } else if (window_bytes > 0 && advertising_zero_window_) {
    advertising_zero_window_ = false;
    const double duration_s = (sim_.now() - zero_window_since_).to_seconds();
    stats_.zero_window_total_s += duration_s;
    if (obs::ObsContext* obs = sim_.obs(); obs != nullptr && obs->trace().active()) {
      obs::ZeroWindowEpisode e;
      e.t_s = sim_.now().to_seconds();
      e.connection_id = connection_id_;
      e.endpoint = label_;
      e.duration_s = duration_s;
      obs->trace().emit(e);
    }
    // The episode is only known at its end: retro-emit it as a span so the
    // timeline exporter renders a proper slice.
    obs::emit_span(sim_, zero_window_since_.to_seconds(), obs::SpanCategory::kTcp, "zero_window",
                   connection_id_, label_);
  }
}

void Endpoint::attach(net::Link& tx_link, std::shared_ptr<TagChannel> tx_tags,
                      std::shared_ptr<TagChannel> rx_tags) {
  tx_link_ = &tx_link;
  tx_tags_ = std::move(tx_tags);
  rx_tags_ = std::move(rx_tags);
}

std::uint64_t Endpoint::advertised_window() const {
  const std::uint64_t used = unread_bytes_ + ooo_bytes_;
  return used >= options_.recv_buffer_bytes ? 0 : options_.recv_buffer_bytes - used;
}

std::uint64_t Endpoint::seq_limit() const {
  return 1 + app_bytes_queued_ + (fin_queued_ ? 1 : 0);
}

std::uint64_t Endpoint::unacked_bytes() const {
  const std::uint64_t data_end = 1 + app_bytes_queued_;
  const std::uint64_t una = std::min(std::max<std::uint64_t>(snd_una_, 1), data_end);
  return data_end - una;
}

std::uint64_t Endpoint::untransmitted_bytes() const {
  const std::uint64_t data_end = 1 + app_bytes_queued_;
  const std::uint64_t nxt = std::min(std::max<std::uint64_t>(snd_nxt_, 1), data_end);
  return data_end - nxt;
}

bool Endpoint::at_eof() const { return peer_fin_delivered_ && unread_bytes_ == 0; }

// ---------------------------------------------------------------- transmit

void Endpoint::transmit(TcpSegment segment) {
  if (tx_link_ == nullptr) throw std::logic_error{"Endpoint: attach() before sending"};
  segment.connection_id = connection_id_;
  segment.host = options_.host_tag;
  segment.window_bytes = advertised_window();
  last_advertised_wnd_ = segment.window_bytes;
  note_advertised_window(segment.window_bytes);
  if (!segment.has(TcpFlag::kSyn) || segment.has(TcpFlag::kAck)) {
    // Everything after the initial SYN carries a cumulative ACK.
    segment.flags = segment.flags | TcpFlag::kAck;
    segment.ack = rcv_nxt_;
    // SACK option: advertise the reassembly holes so the peer can recover
    // several losses per round trip.
    segment.sack.clear();
    for (const auto& [start, len] : out_of_order_) {
      if (segment.sack.size() == net::TcpSegment::kMaxSackBlocks) break;
      segment.sack.emplace_back(start, start + len);
    }
  }
  ++stats_.segments_sent;
  if (ctr_segments_sent_ != nullptr) ctr_segments_sent_->inc();
  // ACK bookkeeping: transmitting anything acknowledges received data.
  delack_timer_.cancel();
  segments_since_ack_ = 0;

  const bool consumes_seq =
      segment.payload_bytes > 0 || segment.has(TcpFlag::kSyn) || segment.has(TcpFlag::kFin);
  if (consumes_seq) {
    last_transmit_at_ = sim_.now();
    if (!rto_timer_.pending()) arm_rto();
    const std::uint64_t consumed = segment.payload_bytes +
                                   (segment.has(TcpFlag::kSyn) ? 1 : 0) +
                                   (segment.has(TcpFlag::kFin) ? 1 : 0);
    snd_max_ = std::max(snd_max_, segment.seq + consumed);
    // RTT timing (Karn: only first transmissions are timed).
    if (!timed_seq_.has_value() && !segment.is_retransmission) {
      timed_seq_ = segment.seq + consumed;
      timed_at_ = sim_.now();
    }
  }
  tx_link_->send(segment);
}

void Endpoint::send_pure_ack() {
  TcpSegment ack;
  ack.seq = snd_nxt_;
  ack.flags = TcpFlag::kAck;
  transmit(ack);
}

// ---------------------------------------------------------------- open/close

void Endpoint::connect() {
  if (state_ != TcpState::kClosed) throw std::logic_error{"Endpoint::connect: already open"};
  state_ = TcpState::kSynSent;
  TcpSegment syn;
  syn.seq = 0;
  syn.flags = TcpFlag::kSyn;
  snd_nxt_ = 1;
  transmit(syn);
}

void Endpoint::listen() {
  if (state_ != TcpState::kClosed) throw std::logic_error{"Endpoint::listen: already open"};
  state_ = TcpState::kListen;
}

void Endpoint::send(std::uint64_t bytes, std::any tag) {
  if (fin_queued_) throw std::logic_error{"Endpoint::send: stream already closed"};
  app_bytes_queued_ += bytes;
  if (tag.has_value()) {
    if (!tx_tags_) throw std::logic_error{"Endpoint::send: no tag channel attached"};
    tx_tags_->attach(app_bytes_queued_, std::move(tag));
  }
  try_send();
}

void Endpoint::close() {
  if (fin_queued_) return;
  fin_queued_ = true;
  try_send();
}

// ---------------------------------------------------------------- send loop

std::uint64_t Endpoint::send_limit() const {
  const std::uint64_t wnd = peer_wnd_seen_ ? peer_wnd_ : cwnd_;
  return std::min(cwnd_, wnd);
}

void Endpoint::maybe_idle_restart() {
  if (!options_.reset_cwnd_after_idle) return;
  if (bytes_in_flight() != 0) return;
  if (last_transmit_at_ == sim::SimTime{}) return;
  if (sim_.now() - last_transmit_at_ > rto_) {
    cwnd_ = static_cast<std::uint64_t>(options_.initial_cwnd_segments) * options_.mss;
    probe_cwnd();
  }
}

void Endpoint::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kFinSent) return;
  maybe_idle_restart();

  const std::uint64_t data_end = 1 + app_bytes_queued_;
  while (true) {
    if (snd_una_ >= retransmit_until_) retransmit_until_ = 0;  // repair done
    // Post-timeout hole repair: skip over ranges the receiver already holds.
    if (snd_nxt_ < retransmit_until_) {
      const auto it = sacked_.upper_bound(snd_nxt_);
      if (it != sacked_.begin()) {
        const auto prev = std::prev(it);
        if (prev->first <= snd_nxt_ && prev->second > snd_nxt_) {
          snd_nxt_ = prev->second;
          continue;
        }
      }
    }

    const std::uint64_t limit = send_limit();
    const std::uint64_t flight = bytes_in_flight();
    if (flight >= limit) break;
    const std::uint64_t room = limit - flight;

    if (snd_nxt_ < data_end) {
      const bool repairing = snd_nxt_ < retransmit_until_;
      std::uint64_t payload = std::min<std::uint64_t>(
          {static_cast<std::uint64_t>(options_.mss), data_end - snd_nxt_, room});
      if (repairing) {
        // Stay within the repair range and stop at the next SACKed run.
        payload = std::min(payload, retransmit_until_ - snd_nxt_);
        const auto next = sacked_.lower_bound(snd_nxt_ + 1);
        if (next != sacked_.end()) payload = std::min(payload, next->first - snd_nxt_);
      }
      if (payload == 0) break;
      TcpSegment seg;
      seg.seq = snd_nxt_;
      seg.payload_bytes = static_cast<std::uint32_t>(payload);
      seg.is_retransmission = repairing;
      if (snd_nxt_ + payload == data_end) seg.flags = seg.flags | TcpFlag::kPsh;
      snd_nxt_ += payload;
      if (repairing) {
        stats_.bytes_retransmitted += payload;
        ++stats_.segments_retransmitted;
        if (ctr_segments_retransmitted_ != nullptr) {
          ctr_segments_retransmitted_->inc();
          ctr_bytes_retransmitted_->inc(payload);
        }
      } else {
        stats_.bytes_sent += payload;
      }
      transmit(seg);
    } else if (fin_queued_ && snd_nxt_ == data_end) {
      TcpSegment fin;
      fin.seq = snd_nxt_;
      fin.flags = TcpFlag::kFin;
      fin.is_retransmission = fin_sent_;  // re-sent after an RTO rollback
      snd_nxt_ += 1;
      fin_sent_ = true;
      state_ = TcpState::kFinSent;
      transmit(fin);
    } else {
      break;
    }
  }

  // Zero-window persistence: data waiting, nothing in flight, window shut.
  if (snd_nxt_ < data_end && bytes_in_flight() == 0 && peer_wnd_seen_ && peer_wnd_ == 0 &&
      !persist_timer_.pending()) {
    arm_persist();
  }
}

void Endpoint::arm_persist() {
  persist_timer_ = sim_.schedule_after(persist_backoff_, [this] { on_persist(); });
}

void Endpoint::on_persist() {
  const std::uint64_t data_end = 1 + app_bytes_queued_;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kFinSent) return;
  if (peer_wnd_ != 0 || snd_nxt_ >= data_end) {
    persist_backoff_ = options_.persist_interval;
    try_send();
    return;
  }
  // One-byte window probe. Unlike ordinary data it neither advances
  // snd_nxt nor arms the RTO: the persist timer itself is the
  // retransmission mechanism, and probe loss must not collapse cwnd
  // (RFC 1122 §4.2.2.17). The byte is re-sent normally once the window
  // opens, so the receiver simply discards the out-of-window copy.
  TcpSegment probe;
  probe.seq = snd_nxt_;
  probe.payload_bytes = 1;
  probe.is_retransmission = true;  // annotate for the capture tap
  probe.flags = TcpFlag::kAck;
  probe.ack = rcv_nxt_;
  probe.window_bytes = advertised_window();
  probe.connection_id = connection_id_;
  probe.host = options_.host_tag;
  note_advertised_window(probe.window_bytes);
  ++stats_.segments_sent;
  if (ctr_segments_sent_ != nullptr) ctr_segments_sent_->inc();
  tx_link_->send(probe);
  persist_backoff_ = std::min(persist_backoff_ + persist_backoff_, options_.max_rto);
  arm_persist();
}

// ---------------------------------------------------------------- timers

void Endpoint::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = sim_.schedule_after(rto_, [this] { on_rto(); });
}

void Endpoint::cancel_rto() { rto_timer_.cancel(); }

void Endpoint::on_rto() {
  if (state_ == TcpState::kFinished || state_ == TcpState::kClosed) return;
  if (snd_una_ >= snd_nxt_ && state_ != TcpState::kSynSent && state_ != TcpState::kSynReceived) {
    return;  // nothing outstanding; stale timer
  }
  ++stats_.timeouts;
  if (ctr_timeouts_ != nullptr) ctr_timeouts_->inc();
  const std::uint64_t flight = std::max<std::uint64_t>(bytes_in_flight(), options_.mss);
  ssthresh_ = std::max<std::uint64_t>(flight / 2, 2ULL * options_.mss);
  cwnd_ = options_.mss;  // RFC 5681 loss window
  VSTREAM_POSTCONDITION(ssthresh_ >= 2ULL * options_.mss,
                        "RTO must leave ssthresh at >= 2 MSS (RFC 5681)");
  in_fast_recovery_ = false;
  dup_acks_ = 0;
  rexmit_high_ = 0;
  rto_ = std::min(rto_ + rto_, options_.max_rto);  // exponential backoff
  if (!recovery_span_.active()) {
    recovery_span_ =
        obs::open_span(sim_, obs::SpanCategory::kTcp, "rto_recovery", connection_id_);
  }
  probe_cwnd();

  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived) {
    retransmit_front();
    arm_rto();
    return;
  }
  // Roll back and re-send everything outstanding under slow start, skipping
  // runs the receiver has SACKed. This is what keeps multi-loss windows from
  // wedging the pipe accounting.
  retransmit_until_ = std::max(retransmit_until_, snd_nxt_);
  snd_nxt_ = snd_una_;
  arm_rto();
  try_send();
}

// ---------------------------------------------------------------- retransmit

void Endpoint::merge_sacked(std::uint64_t start, std::uint64_t end) {
  if (end <= start) return;
  auto it = sacked_.upper_bound(start);
  if (it != sacked_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->second);
      sacked_.erase(prev);
    }
  }
  it = sacked_.lower_bound(start);
  while (it != sacked_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = sacked_.erase(it);
  }
  sacked_.emplace(start, end);
}

void Endpoint::prune_sacked() {
  auto it = sacked_.begin();
  while (it != sacked_.end() && it->second <= snd_una_) it = sacked_.erase(it);
  if (it != sacked_.end() && it->first < snd_una_) {
    const std::uint64_t end = it->second;
    sacked_.erase(it);
    sacked_.emplace(snd_una_, end);
  }
}

bool Endpoint::retransmit_next_hole() {
  timed_seq_.reset();  // Karn's algorithm: never time retransmitted ranges
  const std::uint64_t data_end = 1 + app_bytes_queued_;

  std::uint64_t hole = std::max(snd_una_, rexmit_high_);
  // Skip over SACKed runs.
  for (auto it = sacked_.begin(); it != sacked_.end() && it->first <= hole; ++it) {
    if (it->second > hole) hole = it->second;
  }
  // RFC 6675 discipline: only sequences *below* the highest SACKed byte are
  // provably lost; beyond it the data may simply still be in flight. With
  // no SACK information, fall back to the classic first-segment retransmit.
  const std::uint64_t ceiling =
      sacked_.empty() ? snd_una_ + options_.mss : sacked_.rbegin()->second;
  if (hole >= ceiling) return false;
  if (hole >= snd_nxt_) return false;

  TcpSegment seg;
  seg.is_retransmission = true;
  if (hole < data_end) {
    std::uint64_t len = std::min<std::uint64_t>(
        {static_cast<std::uint64_t>(options_.mss), data_end - hole, snd_nxt_ - hole});
    // Do not overlap the next SACKed run.
    const auto next = sacked_.upper_bound(hole);
    if (next != sacked_.end()) len = std::min(len, next->first - hole);
    seg.seq = hole;
    seg.payload_bytes = static_cast<std::uint32_t>(len);
    stats_.bytes_retransmitted += len;
    ++stats_.segments_retransmitted;
    if (ctr_segments_retransmitted_ != nullptr) {
      ctr_segments_retransmitted_->inc();
      ctr_bytes_retransmitted_->inc(len);
    }
    rexmit_high_ = hole + len;
    transmit(seg);
    return true;
  }
  if (fin_sent_ && hole == data_end) {
    seg.seq = hole;
    seg.flags = TcpFlag::kFin;
    ++stats_.segments_retransmitted;
    if (ctr_segments_retransmitted_ != nullptr) ctr_segments_retransmitted_->inc();
    rexmit_high_ = hole + 1;
    transmit(seg);
    return true;
  }
  return false;
}

void Endpoint::retransmit_front() {
  TcpSegment seg;
  seg.is_retransmission = true;

  if (state_ == TcpState::kSynSent) {
    timed_seq_.reset();
    seg.seq = 0;
    seg.flags = TcpFlag::kSyn;
    transmit(seg);
    return;
  }
  if (state_ == TcpState::kSynReceived) {
    timed_seq_.reset();
    seg.seq = 0;
    seg.flags = TcpFlag::kSyn | TcpFlag::kAck;
    transmit(seg);
    return;
  }
  if (snd_una_ >= snd_nxt_) return;
  rexmit_high_ = 0;  // restart recovery from the cumulative-ACK point
  (void)retransmit_next_hole();
}

// ---------------------------------------------------------------- receive

void Endpoint::note_peer_window(const TcpSegment& segment) {
  const bool was_zero = peer_wnd_seen_ && peer_wnd_ == 0;
  peer_wnd_ = segment.window_bytes;
  peer_wnd_seen_ = true;
  if (peer_wnd_ > 0) {
    persist_timer_.cancel();
    persist_backoff_ = options_.persist_interval;
  }
  // Sample on every rwnd zero-crossing so a cwnd trace reconstructs the
  // receiver's starvation episodes exactly (Fig 2b / 6a signal).
  if ((peer_wnd_ == 0) != was_zero) probe_cwnd();
}

void Endpoint::on_segment(const TcpSegment& segment) {
  on_segment_impl(segment);
  audit_state();
}

void Endpoint::on_segment_impl(const TcpSegment& segment) {
  const std::uint64_t prev_wnd = peer_wnd_;
  const bool had_wnd = peer_wnd_seen_;

  switch (state_) {
    case TcpState::kClosed:
    case TcpState::kFinished:
      return;

    case TcpState::kListen:
      if (segment.has(TcpFlag::kSyn) && !segment.has(TcpFlag::kAck)) {
        rcv_nxt_ = 1;
        note_peer_window(segment);
        state_ = TcpState::kSynReceived;
        TcpSegment synack;
        synack.seq = 0;
        synack.flags = TcpFlag::kSyn | TcpFlag::kAck;
        snd_nxt_ = 1;
        transmit(synack);
      }
      return;

    case TcpState::kSynSent:
      if (segment.has(TcpFlag::kSyn) && segment.has(TcpFlag::kAck) && segment.ack >= 1) {
        rcv_nxt_ = 1;
        snd_una_ = 1;
        note_peer_window(segment);
        sample_rtt(1);
        cancel_rto();
        rto_timer_ = {};
        state_ = TcpState::kEstablished;
        send_pure_ack();
        if (on_established_) on_established_();
        try_send();
      }
      return;

    case TcpState::kSynReceived:
      if (segment.has(TcpFlag::kAck) && segment.ack >= 1) {
        snd_una_ = std::max<std::uint64_t>(snd_una_, 1);
        note_peer_window(segment);
        sample_rtt(1);
        cancel_rto();
        state_ = TcpState::kEstablished;
        if (on_established_) on_established_();
        // The handshake-completing ACK may already carry data (or a FIN).
        if (segment.payload_bytes > 0 || segment.has(TcpFlag::kFin)) handle_data(segment);
        try_send();
      }
      return;

    case TcpState::kEstablished:
    case TcpState::kFinSent:
      break;
  }

  note_peer_window(segment);
  if (segment.has(TcpFlag::kAck)) {
    // Only a genuine window *reopening* (from nearly closed) is excluded
    // from duplicate-ACK counting; ordinary fluctuation of the advertised
    // window must not mask dup ACKs or fast retransmit never triggers.
    const bool window_update =
        had_wnd && prev_wnd < options_.mss && segment.window_bytes > prev_wnd;
    handle_ack_impl(segment, window_update);
  }
  if (segment.payload_bytes > 0 || segment.has(TcpFlag::kFin)) handle_data(segment);
  try_send();
}

void Endpoint::handle_ack(const TcpSegment& segment) { handle_ack_impl(segment, false); }

void Endpoint::handle_ack_impl(const TcpSegment& segment, bool window_update) {
  const std::uint64_t ack = segment.ack;
  // Acks above everything ever sent are bogus. Acks above a rolled-back
  // snd_nxt (post-RTO) are valid: earlier in-flight data filled the hole.
  if (ack > snd_max_) return;

  for (const auto& [start, end] : segment.sack) merge_sacked(start, end);

  if (ack > snd_una_) {
    const std::uint64_t acked = ack - snd_una_;
    snd_una_ = ack;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    prune_sacked();
    ++stats_.acks_received;
    sample_rtt(ack);
    on_new_ack(acked, ack);
    if (snd_una_ >= snd_nxt_) {
      cancel_rto();
      rto_ = std::min(rto_, options_.max_rto);
    } else {
      arm_rto();
    }
    if (fin_sent_ && snd_una_ >= seq_limit()) {
      state_ = TcpState::kFinished;
      cancel_rto();
    }
    return;
  }

  // Potential duplicate ACK.
  if (ack == snd_una_ && snd_nxt_ > snd_una_ && segment.payload_bytes == 0 &&
      !segment.has(TcpFlag::kSyn) && !segment.has(TcpFlag::kFin) && !window_update) {
    ++stats_.dup_acks_received;
    ++dup_acks_;
    if (!in_fast_recovery_ && dup_acks_ == 3) {
      enter_fast_recovery();
    } else if (in_fast_recovery_ && dup_acks_ > 3) {
      cwnd_ += options_.mss;  // inflate per extra dup ack
      // SACK-driven recovery: each returning ACK clocks out one more hole.
      (void)retransmit_next_hole();
    }
  }
}

void Endpoint::on_new_ack(std::uint64_t acked_bytes, std::uint64_t ack) {
  if (in_fast_recovery_) {
    if (ack >= recover_) {
      // Full ACK: deflate and leave recovery.
      cwnd_ = ssthresh_;
      in_fast_recovery_ = false;
      dup_acks_ = 0;
      rexmit_high_ = 0;
      recovery_span_.close("recovered");
    } else {
      // Partial ACK: retransmit the next un-SACKed hole, partial deflate.
      (void)retransmit_next_hole();
      cwnd_ = (cwnd_ > acked_bytes ? cwnd_ - acked_bytes : options_.mss);
      cwnd_ += options_.mss;
      arm_rto();
    }
    probe_cwnd();
    return;
  }

  dup_acks_ = 0;
  // A forward ACK after an RTO rollback ends that recovery episode.
  recovery_span_.close("recovered");
  if (cwnd_ < ssthresh_) {
    // Slow start with Appropriate Byte Counting (RFC 3465, L=2), which keeps
    // exponential growth under delayed ACKs.
    cwnd_ += std::min<std::uint64_t>(acked_bytes, 2ULL * options_.mss);
  } else {
    const std::uint64_t inc =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(options_.mss) * options_.mss / cwnd_);
    cwnd_ += inc;  // congestion avoidance, ~1 MSS per RTT
  }
  VSTREAM_POSTCONDITION(cwnd_ >= options_.mss, "ACK processing shrank cwnd below one MSS");
  probe_cwnd();
}

void Endpoint::enter_fast_recovery() {
  const std::uint64_t flight = std::max<std::uint64_t>(bytes_in_flight(), options_.mss);
  ssthresh_ = std::max<std::uint64_t>(flight / 2, 2ULL * options_.mss);
  cwnd_ = ssthresh_ + 3ULL * options_.mss;
  recover_ = snd_nxt_;
  in_fast_recovery_ = true;
  ++stats_.fast_retransmits;
  if (ctr_fast_retransmits_ != nullptr) ctr_fast_retransmits_->inc();
  if (!recovery_span_.active()) {
    recovery_span_ =
        obs::open_span(sim_, obs::SpanCategory::kTcp, "fast_recovery", connection_id_);
  }
  probe_cwnd();
  rexmit_high_ = 0;
  (void)retransmit_next_hole();
  arm_rto();
}

void Endpoint::sample_rtt(std::uint64_t ack) {
  if (!timed_seq_.has_value() || ack < *timed_seq_) return;
  const double r = (sim_.now() - timed_at_).to_seconds();
  timed_seq_.reset();
  if (r < 0.0) return;
  if (!have_rtt_sample_) {
    srtt_s_ = r;
    rttvar_s_ = r / 2.0;
    have_rtt_sample_ = true;
  } else {
    constexpr double kAlpha = 1.0 / 8.0;
    constexpr double kBeta = 1.0 / 4.0;
    rttvar_s_ = (1.0 - kBeta) * rttvar_s_ + kBeta * std::abs(srtt_s_ - r);
    srtt_s_ = (1.0 - kAlpha) * srtt_s_ + kAlpha * r;
  }
  stats_.last_srtt_s = srtt_s_;
  const double rto_s = srtt_s_ + std::max(kRttGranularityS, 4.0 * rttvar_s_);
  rto_ = std::clamp(sim::Duration::seconds(rto_s), options_.min_rto, options_.max_rto);
}

// ---------------------------------------------------------------- data path

void Endpoint::handle_data(const TcpSegment& segment) {
  const std::uint64_t seq = segment.seq;
  const std::uint64_t len = segment.payload_bytes;
  const std::uint64_t end = seq + len;
  const std::uint64_t ooo_before = ooo_bytes_;
  const std::uint64_t rcv_nxt_before = rcv_nxt_;
  bool immediate_ack = false;
  bool became_readable = false;

  if (segment.has(TcpFlag::kFin) && !peer_fin_seq_.has_value()) {
    peer_fin_seq_ = end;  // FIN occupies the seq right after its payload
  }

  // Buffer room guards against bytes beyond the advertised window (e.g.
  // zero-window persist probes), which a real receiver discards. Bytes that
  // fill the hole below buffered out-of-order data were inside the window
  // when sent, so they are always acceptable — rejecting them would wedge
  // the connection (the hole could never close).
  const std::uint64_t used = unread_bytes_ + ooo_bytes_;
  const std::uint64_t room =
      options_.recv_buffer_bytes > used ? options_.recv_buffer_bytes - used : 0;
  std::uint64_t accept_limit = room;
  if (!out_of_order_.empty() && out_of_order_.begin()->first > rcv_nxt_) {
    accept_limit = std::max(accept_limit, out_of_order_.begin()->first - rcv_nxt_);
  }

  if (end > rcv_nxt_ && seq <= rcv_nxt_) {
    // In-order (possibly partially duplicate) data.
    const std::uint64_t wanted = end - rcv_nxt_;
    const std::uint64_t fresh = std::min(wanted, accept_limit);
    rcv_nxt_ += fresh;
    unread_bytes_ += fresh;
    stats_.bytes_received += fresh;
    became_readable = fresh > 0;
    if (fresh < wanted) immediate_ack = true;  // trimmed: re-advertise window now
    deliver_in_order();  // absorb any out-of-order runs now contiguous
  } else if (seq > rcv_nxt_ && len > 0) {
    // Hole: stash (capacity permitting) and signal with an immediate dup ACK.
    if (len <= room) insert_out_of_order(seq, len);
    immediate_ack = true;
  } else if (len > 0) {
    immediate_ack = true;  // stale retransmission: re-ack immediately
  }

  // RFC 5681 §4.2: ack immediately while the reassembly buffer has holes,
  // and when a segment fills one — this is what lets the sender's loss
  // recovery proceed at ACK speed instead of delayed-ACK speed.
  if (!out_of_order_.empty() || ooo_bytes_ < ooo_before) immediate_ack = true;

  if (peer_fin_seq_.has_value() && !peer_fin_delivered_ && rcv_nxt_ == *peer_fin_seq_) {
    rcv_nxt_ = *peer_fin_seq_ + 1;  // consume the FIN
    peer_fin_delivered_ = true;
    immediate_ack = true;
  }

  VSTREAM_POSTCONDITION(rcv_nxt_ >= rcv_nxt_before,
                        "receive path moved the in-order delivery point backwards");
  // Give the application its data before acking, so a synchronous reader's
  // drain is reflected in the advertised window the ACK carries.
  if (became_readable && on_readable_) on_readable_();
  schedule_ack(immediate_ack);
  if (peer_fin_delivered_ && !peer_fin_notified_) {
    peer_fin_notified_ = true;
    if (on_peer_fin_) on_peer_fin_();
  }
}

void Endpoint::insert_out_of_order(std::uint64_t seq, std::uint64_t len) {
  // Keep the reassembly map as disjoint merged intervals.
  std::uint64_t start = seq;
  std::uint64_t end = seq + len;
  auto it = out_of_order_.upper_bound(start);
  if (it != out_of_order_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second >= start) {
      start = prev->first;
      end = std::max(end, prev->first + prev->second);
      out_of_order_.erase(prev);
    }
  }
  it = out_of_order_.lower_bound(start);
  while (it != out_of_order_.end() && it->first <= end) {
    end = std::max(end, it->first + it->second);
    it = out_of_order_.erase(it);
  }
  out_of_order_.emplace(start, end - start);
  recount_out_of_order();
}

void Endpoint::recount_out_of_order() {
  ooo_bytes_ = 0;
  for (const auto& [start, len] : out_of_order_) ooo_bytes_ += len;
}

void Endpoint::deliver_in_order() {
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first <= rcv_nxt_) {
    const std::uint64_t seg_end = it->first + it->second;
    if (seg_end > rcv_nxt_) {
      const std::uint64_t fresh = seg_end - rcv_nxt_;
      rcv_nxt_ = seg_end;
      unread_bytes_ += fresh;
      stats_.bytes_received += fresh;
    }
    it = out_of_order_.erase(it);
  }
  recount_out_of_order();
}

void Endpoint::schedule_ack(bool immediate) {
  if (immediate || !options_.delayed_ack) {
    send_pure_ack();
    return;
  }
  ++segments_since_ack_;
  if (segments_since_ack_ >= 2) {
    send_pure_ack();
    return;
  }
  if (!delack_timer_.pending()) {
    delack_timer_ = sim_.schedule_after(options_.delayed_ack_timeout, [this] {
      if (segments_since_ack_ > 0) send_pure_ack();
    });
  }
}

Endpoint::ReadResult Endpoint::read(std::uint64_t max_bytes) {
  ReadResult result;
  const std::uint64_t n = std::min(max_bytes, unread_bytes_);
  unread_bytes_ -= n;
  total_read_ += n;
  result.bytes = n;
  if (rx_tags_) result.tags = rx_tags_->collect(total_read_);
  result.eof = at_eof();

  // Window update: tell a zero/small-window peer that room opened up.
  if (n > 0 && last_advertised_wnd_ < options_.mss && advertised_window() >= options_.mss &&
      (state_ == TcpState::kEstablished || state_ == TcpState::kFinSent)) {
    send_pure_ack();
  }
  return result;
}

}  // namespace vstream::tcp
