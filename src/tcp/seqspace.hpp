// 32-bit wire sequence-space arithmetic (RFC 793 / RFC 1982 style).
//
// The simulator keeps sequence numbers as 64-bit absolute offsets, which
// cannot wrap in any realistic run; but everything that crosses the wire
// boundary — the pcap writer, trace analysis of captured segments, replayed
// real captures — sees the 32-bit field, where a long-lived fat connection
// wraps in minutes. All comparisons on wire values must therefore be done
// modulo 2^32 through these helpers; `tools/vstream_lint.py` forbids raw
// relational operators on `WireSeq` fields.
#pragma once

#include <cstdint>

#include "check/contracts.hpp"

namespace vstream::tcp {

/// A sequence number as it appears in the 32-bit TCP header field.
using WireSeq = std::uint32_t;

/// Half the sequence space; the comparison horizon. Two wire values whose
/// distance exceeds this are ambiguous under RFC 1982 serial arithmetic.
inline constexpr std::uint32_t kSeqHorizon = 0x80000000U;

/// Truncate a 64-bit absolute stream offset to its wire representation.
[[nodiscard]] constexpr WireSeq to_wire(std::uint64_t absolute_seq) {
  return static_cast<WireSeq>(absolute_seq);
}

/// Signed distance a -> b in sequence space, correct across wraparound as
/// long as the true distance is under half the space.
[[nodiscard]] constexpr std::int32_t seq_distance(WireSeq from, WireSeq to) {
  return static_cast<std::int32_t>(to - from);
}

[[nodiscard]] constexpr bool seq_lt(WireSeq a, WireSeq b) { return seq_distance(a, b) > 0; }
[[nodiscard]] constexpr bool seq_leq(WireSeq a, WireSeq b) { return seq_distance(a, b) >= 0; }
[[nodiscard]] constexpr bool seq_gt(WireSeq a, WireSeq b) { return seq_lt(b, a); }
[[nodiscard]] constexpr bool seq_geq(WireSeq a, WireSeq b) { return seq_leq(b, a); }

/// Advance a wire sequence by `bytes`, wrapping modulo 2^32.
[[nodiscard]] constexpr WireSeq seq_add(WireSeq seq, std::uint64_t bytes) {
  return static_cast<WireSeq>(seq + static_cast<std::uint32_t>(bytes));
}

/// Un-wrap a captured wire value back to a 64-bit absolute offset, given a
/// recent absolute reference (e.g. the highest absolute seq seen so far).
/// The wire value is interpreted as the absolute offset closest to the
/// reference, which is exact while the reference lags the truth by less
/// than half the sequence space.
[[nodiscard]] constexpr std::uint64_t from_wire(WireSeq wire, std::uint64_t reference) {
  const std::int32_t delta = seq_distance(to_wire(reference), wire);
  const std::int64_t absolute = static_cast<std::int64_t>(reference) + delta;
  VSTREAM_POSTCONDITION(absolute >= 0, "unwrapped sequence must not precede stream start");
  return static_cast<std::uint64_t>(absolute);
}

}  // namespace vstream::tcp
