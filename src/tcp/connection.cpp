#include "tcp/connection.hpp"

namespace vstream::tcp {

Connection::Connection(sim::Simulator& sim, net::Path& path, std::uint64_t id,
                       TcpOptions client_options, TcpOptions server_options)
    : id_{id} {
  auto client_to_server = std::make_shared<TagChannel>();
  auto server_to_client = std::make_shared<TagChannel>();

  client_ = std::make_unique<Endpoint>(sim, id, client_options, "client#" + std::to_string(id));
  server_ = std::make_unique<Endpoint>(sim, id, server_options, "server#" + std::to_string(id));

  // Client transmits on the up link, server on the path's data ingress —
  // the down link itself on a private path, the shared bottleneck link in
  // a multi-session topology (net/bottleneck.hpp).
  client_->attach(path.up(), client_to_server, server_to_client);
  server_->attach(path.down_ingress(), server_to_client, client_to_server);
  server_->listen();
}

Fabric::Fabric(sim::Simulator& sim, net::Path& path, std::uint64_t first_id)
    : sim_{sim}, path_{path}, next_id_{first_id} {
  path_.down().set_receiver([this](const net::TcpSegment& s) {
    const auto it = connections_.find(s.connection_id);
    if (it != connections_.end()) it->second->client().on_segment(s);
  });
  path_.up().set_receiver([this](const net::TcpSegment& s) {
    const auto it = connections_.find(s.connection_id);
    if (it != connections_.end()) it->second->server().on_segment(s);
  });
}

Connection& Fabric::create_connection(TcpOptions client_options, TcpOptions server_options,
                                      std::uint8_t host) {
  const std::uint64_t id = next_id_++;
  client_options.host_tag = host;
  server_options.host_tag = host;
  auto conn = std::make_unique<Connection>(sim_, path_, id, client_options, server_options);
  auto& ref = *conn;
  connections_.emplace(id, std::move(conn));
  return ref;
}

}  // namespace vstream::tcp
