#include "net/path_builder.hpp"

namespace vstream::net {

std::unique_ptr<Path> PathBuilder::build() {
  auto path = std::make_unique<Path>(sim_, profile_, *rng_, std::move(down_loss_));
  if (down_ingress_ != nullptr) path->set_down_ingress(down_ingress_);
  if (tap_) path->set_tap(std::move(tap_));
  if (!impairments_.empty()) path->set_impairments(std::move(impairments_));
  if (cross_.has_value()) {
    auto cross = std::make_unique<CrossTraffic>(sim_, path->down(), *cross_,
                                                rng_->fork("cross-traffic"));
    cross->start();
    path->adopt_cross_traffic(std::move(cross));
  }
  return path;
}

}  // namespace vstream::net
