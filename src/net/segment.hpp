// Wire-level TCP segment representation.
//
// Links transport these; TCP endpoints produce and consume them; the capture
// module records them. Payload is modelled as a byte *count* — application
// message contents travel out-of-band keyed by stream offset (see
// tcp::TagChannel), the standard simulator idiom for bulk traffic.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vstream::net {

enum class TcpFlag : std::uint8_t {
  kNone = 0,
  kSyn = 1U << 0U,
  kAck = 1U << 1U,
  kFin = 1U << 2U,
  kPsh = 1U << 3U,
  kRst = 1U << 4U,
};

[[nodiscard]] constexpr TcpFlag operator|(TcpFlag a, TcpFlag b) {
  return static_cast<TcpFlag>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr bool has_flag(TcpFlag set, TcpFlag f) {
  return (static_cast<std::uint8_t>(set) & static_cast<std::uint8_t>(f)) != 0;
}

/// Direction of travel relative to the viewer (client): Down = server->client.
enum class Direction : std::uint8_t { kDown, kUp };

[[nodiscard]] constexpr Direction opposite(Direction d) {
  return d == Direction::kDown ? Direction::kUp : Direction::kDown;
}

struct TcpSegment {
  std::uint64_t connection_id{0};  ///< distinguishes parallel connections
  std::uint64_t seq{0};            ///< first payload byte's stream offset
  std::uint64_t ack{0};            ///< cumulative ack (next expected byte)
  std::uint32_t payload_bytes{0};
  std::uint64_t window_bytes{0};  ///< advertised receive window
  TcpFlag flags{TcpFlag::kNone};
  bool is_retransmission{false};  ///< sender-side annotation for the capture tap
  /// Which server the connection talks to (0 = video CDN, 1+ = auxiliary
  /// hosts). The capture surfaces this as the server address, which is how
  /// the paper's analysis separated video from auxiliary traffic (§2).
  std::uint8_t host{0};

  /// SACK option: up to 3 received-but-not-acked ranges [start, end).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack;

  static constexpr std::uint32_t kHeaderBytes = 40;   // IPv4 (20) + TCP (20)
  static constexpr std::size_t kMaxSackBlocks = 3;

  [[nodiscard]] std::uint32_t wire_bytes() const {
    // SACK option costs 2 bytes plus 8 per block, as on the real wire.
    const auto sack_bytes = static_cast<std::uint32_t>(sack.empty() ? 0 : 2 + 8 * sack.size());
    return payload_bytes + kHeaderBytes + sack_bytes;
  }
  [[nodiscard]] bool has(TcpFlag f) const { return has_flag(flags, f); }
  [[nodiscard]] std::string flag_string() const;
};

}  // namespace vstream::net
