// Wire-level TCP segment representation.
//
// Links transport these; TCP endpoints produce and consume them; the capture
// module records them. Payload is modelled as a byte *count* — application
// message contents travel out-of-band keyed by stream offset (see
// tcp::TagChannel), the standard simulator idiom for bulk traffic.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>

namespace vstream::net {

enum class TcpFlag : std::uint8_t {
  kNone = 0,
  kSyn = 1U << 0U,
  kAck = 1U << 1U,
  kFin = 1U << 2U,
  kPsh = 1U << 3U,
  kRst = 1U << 4U,
};

[[nodiscard]] constexpr TcpFlag operator|(TcpFlag a, TcpFlag b) {
  return static_cast<TcpFlag>(static_cast<std::uint8_t>(a) | static_cast<std::uint8_t>(b));
}
[[nodiscard]] constexpr bool has_flag(TcpFlag set, TcpFlag f) {
  return (static_cast<std::uint8_t>(set) & static_cast<std::uint8_t>(f)) != 0;
}

/// Fixed-capacity SACK block list: up to 3 [start, end) ranges stored
/// inline, so copying a segment across links, capture taps and the recorder
/// never touches the heap (a real TCP header cannot carry more blocks
/// anyway). The vector-flavoured surface (`emplace_back`, `size`, indexing,
/// range-for over `std::pair`) keeps every call site unchanged.
class SackList {
 public:
  /// One [start, end) range. A plain aggregate (std::pair's assignment
  /// operator is not trivial) with pair-compatible member names, so callers
  /// use `.first`/`.second` or structured bindings interchangeably.
  struct Block {
    std::uint64_t first{0};
    std::uint64_t second{0};
    friend constexpr bool operator==(const Block&, const Block&) = default;
  };
  static constexpr std::size_t kCapacity = 3;

  constexpr void clear() { count_ = 0; }
  /// Append a block; silently drops beyond capacity, as a real TCP option
  /// field would (callers cap at kMaxSackBlocks before appending).
  constexpr void emplace_back(std::uint64_t start, std::uint64_t end) {
    if (count_ < kCapacity) blocks_[count_++] = Block{start, end};
  }
  constexpr void push_back(const Block& b) { emplace_back(b.first, b.second); }

  [[nodiscard]] constexpr std::size_t size() const { return count_; }
  [[nodiscard]] constexpr bool empty() const { return count_ == 0; }
  [[nodiscard]] constexpr const Block& operator[](std::size_t i) const { return blocks_[i]; }
  [[nodiscard]] constexpr Block& operator[](std::size_t i) { return blocks_[i]; }
  [[nodiscard]] constexpr const Block* begin() const { return blocks_.data(); }
  [[nodiscard]] constexpr const Block* end() const { return blocks_.data() + count_; }

  friend constexpr bool operator==(const SackList& a, const SackList& b) {
    if (a.count_ != b.count_) return false;
    for (std::size_t i = 0; i < a.count_; ++i) {
      if (a.blocks_[i] != b.blocks_[i]) return false;
    }
    return true;
  }

 private:
  std::array<Block, kCapacity> blocks_{};
  std::uint8_t count_{0};
};

/// Direction of travel relative to the viewer (client): Down = server->client.
enum class Direction : std::uint8_t { kDown, kUp };

[[nodiscard]] constexpr Direction opposite(Direction d) {
  return d == Direction::kDown ? Direction::kUp : Direction::kDown;
}

struct TcpSegment {
  std::uint64_t connection_id{0};  ///< distinguishes parallel connections
  std::uint64_t seq{0};            ///< first payload byte's stream offset
  std::uint64_t ack{0};            ///< cumulative ack (next expected byte)
  std::uint32_t payload_bytes{0};
  std::uint64_t window_bytes{0};  ///< advertised receive window
  TcpFlag flags{TcpFlag::kNone};
  bool is_retransmission{false};  ///< sender-side annotation for the capture tap
  /// Which server the connection talks to (0 = video CDN, 1+ = auxiliary
  /// hosts). The capture surfaces this as the server address, which is how
  /// the paper's analysis separated video from auxiliary traffic (§2).
  std::uint8_t host{0};

  /// SACK option: up to 3 received-but-not-acked ranges [start, end),
  /// stored inline — segments are trivially copyable end to end.
  SackList sack;

  static constexpr std::uint32_t kHeaderBytes = 40;   // IPv4 (20) + TCP (20)
  static constexpr std::size_t kMaxSackBlocks = 3;

  [[nodiscard]] std::uint32_t wire_bytes() const {
    // SACK option costs 2 bytes plus 8 per block, as on the real wire.
    const auto sack_bytes = static_cast<std::uint32_t>(sack.empty() ? 0 : 2 + 8 * sack.size());
    return payload_bytes + kHeaderBytes + sack_bytes;
  }
  [[nodiscard]] bool has(TcpFlag f) const { return has_flag(flags, f); }
  [[nodiscard]] std::string flag_string() const;
};

// The whole point of the inline SACK list: a segment copy is a flat memcpy,
// with no allocator round trip on links, taps or the recorder.
static_assert(std::is_trivially_copyable_v<TcpSegment>);

}  // namespace vstream::net
