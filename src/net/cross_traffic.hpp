// Cross-traffic generator: competing load on a shared link.
//
// The paper's vantage points sat behind shared uplinks (500 Mbps Research,
// 1 Gbps Academic); the video flow competed with other traffic for the
// bottleneck queue. This generator injects Poisson packet bursts onto a
// link so congestion loss arises *inside* the queue rather than from a
// random oracle — used by the loss-model ablation and available to any
// experiment that wants endogenous congestion.
#pragma once

#include <cstdint>

#include "net/link.hpp"
#include "sim/periodic_timer.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace vstream::net {

class CrossTraffic {
 public:
  struct Config {
    /// Long-run average offered load in bits/s.
    double mean_rate_bps{10e6};
    /// Bursts arrive as a Poisson process with this rate.
    double bursts_per_s{20.0};
    /// Packet size of the competing traffic.
    std::uint32_t packet_bytes{1460};
    /// Connection id used to tag the packets (so analyses can exclude them).
    std::uint64_t connection_id{0xC0FFEE};
  };

  CrossTraffic(sim::Simulator& sim, Link& link, Config config, sim::Rng rng);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t packets_injected() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes_injected() const { return bytes_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void schedule_next();
  void inject_burst();

  sim::Simulator& sim_;
  Link& link_;
  Config config_;
  sim::Rng rng_;
  sim::EventHandle next_;
  bool running_{false};
  std::uint64_t packets_{0};
  std::uint64_t bytes_{0};
};

}  // namespace vstream::net
