// Duplex path between a streaming server and a viewer.
//
// Wraps two `Link`s (down = server->client carrying video data, up =
// client->server carrying requests and ACKs) built from a NetworkProfile.
// All parallel TCP connections of one streaming session share the path, so
// they contend for the same bottleneck queue, as in the real measurements.
//
// Construction with the full set of attachments (loss override, tap,
// cross-traffic, impairment schedule) goes through `net::PathBuilder`
// (path_builder.hpp); the plain constructor stays for the common case.
#pragma once

#include <functional>
#include <memory>

#include "net/link.hpp"
#include "net/profile.hpp"

namespace vstream::net {

class CrossTraffic;

class Path {
 public:
  /// `down_loss` overrides the profile-derived loss model for the data
  /// direction when non-null.
  Path(sim::Simulator& sim, const NetworkProfile& profile, sim::Rng& rng,
       std::unique_ptr<LossModel> down_loss = nullptr);
  ~Path();

  Path(const Path&) = delete;
  Path& operator=(const Path&) = delete;

  [[nodiscard]] Link& down() { return *down_; }
  [[nodiscard]] Link& up() { return *up_; }

  /// Where the server side transmits data. On a private path this is the
  /// down link itself; in a shared-bottleneck topology it is the bottleneck
  /// link, which fans delivered segments back into this path's down link
  /// (net/bottleneck.hpp). The ingress link is non-owning and must outlive
  /// the path.
  [[nodiscard]] Link& down_ingress() {
    return down_ingress_ != nullptr ? *down_ingress_ : *down_;
  }
  void set_down_ingress(Link* ingress) { down_ingress_ = ingress; }

  /// Base RTT for zero-payload segments with empty queues.
  [[nodiscard]] sim::Duration unloaded_rtt() const;

  [[nodiscard]] const NetworkProfile& profile() const { return profile_; }

  /// Install a tap observing both directions, tagged with the direction.
  void set_tap(std::function<void(sim::SimTime, const TcpSegment&, Direction, LinkEvent)> tap);

  /// Attach a fault-injection schedule to the data (down) link.
  void set_impairments(ImpairmentSchedule schedule) { down_->set_impairments(std::move(schedule)); }

  /// Take ownership of a cross-traffic generator injecting on this path's
  /// links (PathBuilder wires and starts it).
  void adopt_cross_traffic(std::unique_ptr<CrossTraffic> cross);
  [[nodiscard]] CrossTraffic* cross_traffic() { return cross_.get(); }

 private:
  NetworkProfile profile_;
  std::unique_ptr<Link> down_;
  std::unique_ptr<Link> up_;
  Link* down_ingress_{nullptr};
  std::unique_ptr<CrossTraffic> cross_;
};

}  // namespace vstream::net
