// Duplex path between a streaming server and a viewer.
//
// Wraps two `Link`s (down = server->client carrying video data, up =
// client->server carrying requests and ACKs) built from a NetworkProfile.
// All parallel TCP connections of one streaming session share the path, so
// they contend for the same bottleneck queue, as in the real measurements.
#pragma once

#include <functional>
#include <memory>

#include "net/link.hpp"
#include "net/profile.hpp"

namespace vstream::net {

class Path {
 public:
  Path(sim::Simulator& sim, const NetworkProfile& profile, sim::Rng& rng);

  Path(const Path&) = delete;
  Path& operator=(const Path&) = delete;

  [[nodiscard]] Link& down() { return *down_; }
  [[nodiscard]] Link& up() { return *up_; }

  /// Base RTT for zero-payload segments with empty queues.
  [[nodiscard]] sim::Duration unloaded_rtt() const;

  [[nodiscard]] const NetworkProfile& profile() const { return profile_; }

  /// Install a tap observing both directions, tagged with the direction.
  void set_tap(std::function<void(sim::SimTime, const TcpSegment&, Direction, LinkEvent)> tap);

 private:
  NetworkProfile profile_;
  std::unique_ptr<Link> down_;
  std::unique_ptr<Link> up_;
};

}  // namespace vstream::net
