#include "net/loss_model.hpp"

#include <stdexcept>

namespace vstream::net {

BernoulliLoss::BernoulliLoss(double p) : p_{p} {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument{"BernoulliLoss: p outside [0,1]"};
}

bool BernoulliLoss::should_drop(sim::Rng& rng) { return rng.bernoulli(p_); }

GilbertElliottLoss::GilbertElliottLoss(Params params) : params_{params} {
  const auto check = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0) throw std::invalid_argument{std::string{"GilbertElliottLoss: "} + what};
  };
  check(params.p_good, "p_good outside [0,1]");
  check(params.p_bad, "p_bad outside [0,1]");
  check(params.p_good_to_bad, "p_good_to_bad outside [0,1]");
  check(params.p_bad_to_good, "p_bad_to_good outside [0,1]");
}

bool GilbertElliottLoss::should_drop(sim::Rng& rng) {
  // Transition first, then decide loss in the (new) current state.
  if (bad_) {
    if (rng.bernoulli(params_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng.bernoulli(params_.p_good_to_bad)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? params_.p_bad : params_.p_good);
}

double GilbertElliottLoss::steady_state_loss() const {
  const double denom = params_.p_good_to_bad + params_.p_bad_to_good;
  if (denom <= 0.0) return params_.p_good;
  const double pi_bad = params_.p_good_to_bad / denom;
  return pi_bad * params_.p_bad + (1.0 - pi_bad) * params_.p_good;
}

std::unique_ptr<LossModel> make_loss(double bernoulli_p) {
  if (bernoulli_p <= 0.0) return std::make_unique<NoLoss>();
  return std::make_unique<BernoulliLoss>(bernoulli_p);
}

std::unique_ptr<LossModel> make_bursty_loss(double p, double burst_len) {
  if (p <= 0.0) return std::make_unique<NoLoss>();
  if (burst_len <= 1.0) return std::make_unique<BernoulliLoss>(p);
  if (p >= 1.0) throw std::invalid_argument{"make_bursty_loss: p must be < 1"};
  // Bad state drops everything and lasts burst_len packets on average; the
  // good->bad transition rate is chosen so the long-run loss equals p:
  //   pi_bad = g2b / (g2b + b2g) = p  =>  g2b = p * b2g / (1 - p).
  GilbertElliottLoss::Params params;
  params.p_good = 0.0;
  params.p_bad = 1.0;
  params.p_bad_to_good = 1.0 / burst_len;
  params.p_good_to_bad = p * params.p_bad_to_good / (1.0 - p);
  return std::make_unique<GilbertElliottLoss>(params);
}

}  // namespace vstream::net
