// Shared bottleneck of a multi-session topology.
//
// The paper's Section 6 model is about *aggregate* traffic: N concurrent
// viewers superposed on one ISP-side link. `SharedBottleneck` owns that
// link and fans delivered segments out to per-client access legs: every
// server endpoint transmits into the bottleneck (via
// `Path::set_down_ingress`), the bottleneck's receiver routes each segment
// by the client index carried in the high 32 bits of its connection id,
// and the segment then traverses the client's own down link. All sessions
// therefore contend for one drop-tail queue — the regime the closed-form
// model (model/aggregate.hpp) describes — while keeping their individual
// access characteristics.
//
// Cross-traffic joins the contention by injecting segments whose connection
// id (`kForeignId`) names no client: they occupy queue and wire like any
// other traffic and are dropped at the router, never reaching a viewer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/path.hpp"

namespace vstream::net {

class SharedBottleneck {
 public:
  struct Config {
    /// Serialisation rate of the shared link. Dimension it with
    /// `model::dimension_link_bps` to study the paper's provisioning rule.
    double rate_bps{1e9};
    sim::Duration prop_delay{sim::Duration::millis(5)};
    std::size_t queue_limit_bytes{4 * 1024 * 1024};
    /// Random wire loss on the shared link itself (independent of any
    /// queue overflow, which the drop-tail queue produces endogenously).
    double loss_rate{0.0};
    double loss_burst_len{1.0};

    void validate() const;
  };

  /// The client index lives in the high 32 bits of every connection id.
  static constexpr std::uint32_t kClientShift = 32;
  /// Cross-traffic id: high bits name no attachable client (legs are
  /// indexed from 0 and capped far below 2^32), so the router always drops
  /// it after it has contended for the queue.
  static constexpr std::uint64_t kForeignId = 0xFFFF'FFFF'00C0'FFEEULL;

  /// Forks "bottleneck-loss" from `rng` for the wire-loss model.
  SharedBottleneck(sim::Simulator& sim, const Config& config, sim::Rng& rng);

  SharedBottleneck(const SharedBottleneck&) = delete;
  SharedBottleneck& operator=(const SharedBottleneck&) = delete;

  /// Register a client access leg and point its server-side ingress at the
  /// shared link. Returns the client index; open the leg's connections
  /// with ids starting at `first_connection_id(index)` (tcp::Fabric's
  /// `first_id`) so the router can find the way back. The leg must outlive
  /// the bottleneck's last delivery.
  std::uint32_t attach(Path& leg);

  /// First connection id of client `index`: index in the high 32 bits,
  /// counter in the low 32.
  [[nodiscard]] static std::uint64_t first_connection_id(std::uint32_t index) {
    return (static_cast<std::uint64_t>(index) << kClientShift) | 1U;
  }
  /// Client index a segment belongs to (may be >= legs() for foreign ids).
  [[nodiscard]] static std::uint32_t client_of(std::uint64_t connection_id) {
    return static_cast<std::uint32_t>(connection_id >> kClientShift);
  }

  [[nodiscard]] Link& link() { return *link_; }
  [[nodiscard]] const Link& link() const { return *link_; }
  [[nodiscard]] std::size_t legs() const { return legs_.size(); }

 private:
  std::unique_ptr<Link> link_;
  std::vector<Path*> legs_;
};

}  // namespace vstream::net
