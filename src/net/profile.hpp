// Vantage-network profiles.
//
// The paper measured from four locations (Section 4.2). These profiles model
// each as an access bottleneck (down/up rate), a base round-trip time to the
// streaming CDN, a drop-tail queue, and a random loss rate calibrated so the
// simulated retransmission fraction lands near the paper's reported medians
// (1.02% Residence, 0.76% Academic; negligible elsewhere).
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace vstream::net {

enum class Vantage : std::uint8_t {
  kResearch,   ///< France, 100 Mbps wired behind a 500 Mbps uplink
  kResidence,  ///< France, 54 Mbps Wi-Fi behind 7.7/1.2 Mbps ADSL
  kAcademic,   ///< USA, 100 Mbps wired behind a 1 Gbps uplink
  kHome,       ///< USA, cable modem, 20/3 Mbps typical
};

inline constexpr std::array<Vantage, 4> kAllVantages{Vantage::kResearch, Vantage::kResidence,
                                                     Vantage::kAcademic, Vantage::kHome};

struct NetworkProfile {
  std::string name;
  double down_bps{0.0};
  double up_bps{0.0};
  sim::Duration base_rtt{sim::Duration::zero()};
  double loss_rate{0.0};  ///< average per-packet wire loss on the down path
  /// Mean number of consecutive drops per loss episode. 1 = independent
  /// (Bernoulli) loss; >1 = bursty (Gilbert-Elliott), which matches how
  /// real congestion episodes concentrate drops.
  double loss_burst_len{1.0};
  std::size_t queue_bytes{0};

  [[nodiscard]] double down_mbps() const { return down_bps / 1e6; }
};

[[nodiscard]] NetworkProfile profile_for(Vantage v);
[[nodiscard]] std::string_view vantage_name(Vantage v);

}  // namespace vstream::net
