#include "net/profile.hpp"

#include <stdexcept>

namespace vstream::net {

std::string_view vantage_name(Vantage v) {
  switch (v) {
    case Vantage::kResearch:
      return "Research";
    case Vantage::kResidence:
      return "Residence";
    case Vantage::kAcademic:
      return "Academic";
    case Vantage::kHome:
      return "Home";
  }
  throw std::invalid_argument{"vantage_name: unknown vantage"};
}

NetworkProfile profile_for(Vantage v) {
  // Rates come straight from Section 4.2; RTTs are representative
  // access->CDN figures (France hosts were close to European CDN nodes, the
  // US Academic network close to US nodes, cable adds last-mile latency).
  // Loss rates are calibrated to reproduce the paper's retransmission
  // medians (Section 5.1.1).
  switch (v) {
    case Vantage::kResearch:
      return NetworkProfile{.name = "Research",
                            .down_bps = 100e6,
                            .up_bps = 100e6,
                            .base_rtt = sim::Duration::millis(20),
                            .loss_rate = 0.0002,
                            .queue_bytes = 512 * 1024};
    case Vantage::kResidence:
      return NetworkProfile{.name = "Residence",
                            .down_bps = 7.7e6,
                            .up_bps = 1.2e6,
                            .base_rtt = sim::Duration::millis(45),
                            .loss_rate = 0.0102,
                            .loss_burst_len = 4.0,
                            .queue_bytes = 128 * 1024};
    case Vantage::kAcademic:
      return NetworkProfile{.name = "Academic",
                            .down_bps = 100e6,
                            .up_bps = 100e6,
                            .base_rtt = sim::Duration::millis(15),
                            .loss_rate = 0.0076,
                            .loss_burst_len = 4.0,
                            .queue_bytes = 512 * 1024};
    case Vantage::kHome:
      return NetworkProfile{.name = "Home",
                            .down_bps = 20e6,
                            .up_bps = 3e6,
                            .base_rtt = sim::Duration::millis(30),
                            .loss_rate = 0.001,
                            .loss_burst_len = 2.0,
                            .queue_bytes = 256 * 1024};
  }
  throw std::invalid_argument{"profile_for: unknown vantage"};
}

}  // namespace vstream::net
