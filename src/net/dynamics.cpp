#include "net/dynamics.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vstream::net {

const char* to_string(ImpairmentKind kind) {
  switch (kind) {
    case ImpairmentKind::kRateScale:
      return "rate_scale";
    case ImpairmentKind::kDelaySpike:
      return "delay_spike";
    case ImpairmentKind::kBurstLoss:
      return "burst_loss";
    case ImpairmentKind::kBlackout:
      return "blackout";
  }
  return "?";
}

ImpairmentSchedule& ImpairmentSchedule::rate_scale(sim::SimTime start, sim::Duration duration,
                                                   double factor) {
  ImpairmentWindow w;
  w.kind = ImpairmentKind::kRateScale;
  w.start = start;
  w.duration = duration;
  w.rate_factor = factor;
  windows_.push_back(w);
  return *this;
}

ImpairmentSchedule& ImpairmentSchedule::delay_spike(sim::SimTime start, sim::Duration duration,
                                                    sim::Duration extra) {
  ImpairmentWindow w;
  w.kind = ImpairmentKind::kDelaySpike;
  w.start = start;
  w.duration = duration;
  w.extra_delay = extra;
  windows_.push_back(w);
  return *this;
}

ImpairmentSchedule& ImpairmentSchedule::burst_loss(sim::SimTime start, sim::Duration duration,
                                                   double rate, double burst_len) {
  ImpairmentWindow w;
  w.kind = ImpairmentKind::kBurstLoss;
  w.start = start;
  w.duration = duration;
  w.loss_rate = rate;
  w.loss_burst_len = burst_len;
  windows_.push_back(w);
  return *this;
}

ImpairmentSchedule& ImpairmentSchedule::blackout(sim::SimTime start, sim::Duration duration) {
  ImpairmentWindow w;
  w.kind = ImpairmentKind::kBlackout;
  w.start = start;
  w.duration = duration;
  windows_.push_back(w);
  return *this;
}

ImpairmentSchedule& ImpairmentSchedule::link_flap(sim::SimTime first, sim::Duration down,
                                                  sim::Duration up, std::size_t count) {
  sim::SimTime at = first;
  for (std::size_t i = 0; i < count; ++i) {
    blackout(at, down);
    at = at + down + up;
  }
  return *this;
}

void ImpairmentSchedule::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument{"ImpairmentSchedule: " + what};
  };
  for (const auto& w : windows_) {
    if (w.start.count_nanos() < 0) fail("window starts before t=0");
    if (w.duration.is_negative()) fail("negative window duration");
    switch (w.kind) {
      case ImpairmentKind::kRateScale:
        if (w.rate_factor <= 0.0) fail("rate factor must be positive (use blackout for zero)");
        break;
      case ImpairmentKind::kDelaySpike:
        if (w.extra_delay.is_negative()) fail("negative delay spike");
        break;
      case ImpairmentKind::kBurstLoss:
        if (w.loss_rate < 0.0 || w.loss_rate >= 1.0) fail("burst loss rate outside [0,1)");
        if (w.loss_burst_len < 1.0) fail("burst length below 1 packet");
        break;
      case ImpairmentKind::kBlackout:
        break;
    }
  }
  // Same-kind overlap check over half-open [start, end) intervals:
  // zero-duration windows are empty and can never overlap anything.
  auto sorted = windows_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ImpairmentWindow& a, const ImpairmentWindow& b) {
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.start < b.start;
                   });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const auto& prev = sorted[i - 1];
    const auto& cur = sorted[i];
    if (prev.kind != cur.kind) continue;
    if (prev.duration.is_zero() || cur.duration.is_zero()) continue;
    if (cur.start < prev.end()) {
      fail(std::string{"overlapping "} + to_string(cur.kind) + " windows");
    }
  }
}

ImpairmentSchedule random_link_flaps(sim::Rng& rng, double horizon_s, double flaps_per_min,
                                     double mean_down_s) {
  if (horizon_s <= 0.0 || flaps_per_min <= 0.0 || mean_down_s <= 0.0) {
    throw std::invalid_argument{"random_link_flaps: parameters must be positive"};
  }
  ImpairmentSchedule schedule;
  double t = 0.0;
  while (true) {
    t += rng.exponential(flaps_per_min / 60.0);
    if (t >= horizon_s) break;
    const double down_s = rng.exponential(1.0 / mean_down_s);
    schedule.blackout(sim::SimTime::from_seconds(t), sim::Duration::seconds(down_s));
    // Advance past the outage so successive blackouts never overlap.
    t += down_s;
  }
  return schedule;
}

ImpairmentSchedule random_congestion(sim::Rng& rng, double horizon_s, double episodes_per_min,
                                     double min_factor, double mean_episode_s) {
  if (horizon_s <= 0.0 || episodes_per_min <= 0.0 || mean_episode_s <= 0.0 ||
      min_factor <= 0.0 || min_factor >= 1.0) {
    throw std::invalid_argument{"random_congestion: parameters out of range"};
  }
  ImpairmentSchedule schedule;
  double t = 0.0;
  while (true) {
    t += rng.exponential(episodes_per_min / 60.0);
    if (t >= horizon_s) break;
    const double episode_s = rng.exponential(1.0 / mean_episode_s);
    const double factor = rng.uniform(min_factor, 1.0);
    schedule.rate_scale(sim::SimTime::from_seconds(t), sim::Duration::seconds(episode_s),
                        factor);
    t += episode_s;
  }
  return schedule;
}

}  // namespace vstream::net
