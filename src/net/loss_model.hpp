// Stochastic packet-loss models for links.
//
// The paper's cross-network observations (smaller measured buffering in the
// Residence/Academic networks, merged/split blocks) are driven by loss; the
// profiles below calibrate Bernoulli loss to the paper's reported
// retransmission medians, and Gilbert-Elliott adds bursty-loss experiments.
#pragma once

#include <memory>

#include "sim/rng.hpp"

namespace vstream::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Decide the fate of one packet; called once per packet in link order.
  [[nodiscard]] virtual bool should_drop(sim::Rng& rng) = 0;
};

/// Never drops. The default for lossless profiles.
class NoLoss final : public LossModel {
 public:
  [[nodiscard]] bool should_drop(sim::Rng&) override { return false; }
};

/// Independent per-packet loss with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  [[nodiscard]] bool should_drop(sim::Rng& rng) override;
  [[nodiscard]] double probability() const { return p_; }

 private:
  double p_;
};

/// Two-state Markov (Gilbert-Elliott) burst-loss model. In the Good state
/// packets drop with `p_good`; in the Bad state with `p_bad`. Transitions
/// occur per packet with the given probabilities.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Params {
    double p_good{0.0};        ///< loss prob in Good state
    double p_bad{0.30};        ///< loss prob in Bad state
    double p_good_to_bad{0.0}; ///< per-packet transition Good->Bad
    double p_bad_to_good{0.2}; ///< per-packet transition Bad->Good
  };
  explicit GilbertElliottLoss(Params params);
  [[nodiscard]] bool should_drop(sim::Rng& rng) override;
  [[nodiscard]] bool in_bad_state() const { return bad_; }

  /// Long-run average loss probability implied by the chain.
  [[nodiscard]] double steady_state_loss() const;

 private:
  Params params_;
  bool bad_{false};
};

[[nodiscard]] std::unique_ptr<LossModel> make_loss(double bernoulli_p);

/// Loss model with average rate `p` whose drops arrive in runs of mean
/// length `burst_len` (Gilbert-Elliott with a deterministic bad state).
/// `burst_len <= 1` degenerates to Bernoulli.
[[nodiscard]] std::unique_ptr<LossModel> make_bursty_loss(double p, double burst_len);

}  // namespace vstream::net
