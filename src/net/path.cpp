#include "net/path.hpp"

#include "net/cross_traffic.hpp"

namespace vstream::net {

Path::Path(sim::Simulator& sim, const NetworkProfile& profile, sim::Rng& rng,
           std::unique_ptr<LossModel> down_loss)
    : profile_{profile} {
  // Propagation split evenly across the two directions.
  const sim::Duration one_way = profile.base_rtt / 2;

  Link::Config down_cfg{.rate_bps = profile.down_bps,
                        .prop_delay = one_way,
                        .queue_limit_bytes = profile.queue_bytes};
  Link::Config up_cfg{.rate_bps = profile.up_bps,
                      .prop_delay = one_way,
                      .queue_limit_bytes = profile.queue_bytes};

  if (!down_loss) down_loss = make_bursty_loss(profile.loss_rate, profile.loss_burst_len);
  down_ = std::make_unique<Link>(sim, down_cfg, std::move(down_loss), rng.fork("down-loss"));
  // ACK/request path loss is far rarer in practice; model it as lossless so
  // retransmission statistics reflect the data direction, as in the paper.
  up_ = std::make_unique<Link>(sim, up_cfg, make_loss(0.0), rng.fork("up-loss"));
}

Path::~Path() = default;

void Path::adopt_cross_traffic(std::unique_ptr<CrossTraffic> cross) {
  cross_ = std::move(cross);
}

sim::Duration Path::unloaded_rtt() const {
  return down_->unloaded_latency(0) + up_->unloaded_latency(0);
}

void Path::set_tap(
    std::function<void(sim::SimTime, const TcpSegment&, Direction, LinkEvent)> tap) {
  if (!tap) {
    down_->set_tap({});
    up_->set_tap({});
    return;
  }
  down_->set_tap([tap](sim::SimTime t, const TcpSegment& s, LinkEvent e) {
    tap(t, s, Direction::kDown, e);
  });
  up_->set_tap([tap](sim::SimTime t, const TcpSegment& s, LinkEvent e) {
    tap(t, s, Direction::kUp, e);
  });
}

}  // namespace vstream::net
