#include "net/bottleneck.hpp"

#include <stdexcept>

namespace vstream::net {

void SharedBottleneck::Config::validate() const {
  if (rate_bps <= 0.0) {
    throw std::invalid_argument{"SharedBottleneck: rate must be positive"};
  }
  if (queue_limit_bytes == 0) {
    throw std::invalid_argument{"SharedBottleneck: queue limit must be positive"};
  }
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument{"SharedBottleneck: loss rate outside [0,1)"};
  }
  if (loss_burst_len < 1.0) {
    throw std::invalid_argument{"SharedBottleneck: loss burst length below 1"};
  }
}

SharedBottleneck::SharedBottleneck(sim::Simulator& sim, const Config& config, sim::Rng& rng) {
  config.validate();
  const Link::Config link_cfg{.rate_bps = config.rate_bps,
                              .prop_delay = config.prop_delay,
                              .queue_limit_bytes = config.queue_limit_bytes};
  link_ = std::make_unique<Link>(sim, link_cfg,
                                 make_bursty_loss(config.loss_rate, config.loss_burst_len),
                                 rng.fork("bottleneck-loss"));
  link_->set_receiver([this](const TcpSegment& segment) {
    const std::uint32_t client = client_of(segment.connection_id);
    // Foreign ids (cross-traffic) contended for the queue; their journey
    // ends here.
    if (client < legs_.size()) legs_[client]->down().send(segment);
  });
}

std::uint32_t SharedBottleneck::attach(Path& leg) {
  leg.set_down_ingress(&link());
  legs_.push_back(&leg);
  return static_cast<std::uint32_t>(legs_.size() - 1);
}

}  // namespace vstream::net
