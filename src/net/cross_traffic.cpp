#include "net/cross_traffic.hpp"

#include <cmath>
#include <stdexcept>

namespace vstream::net {

CrossTraffic::CrossTraffic(sim::Simulator& sim, Link& link, Config config, sim::Rng rng)
    : sim_{sim}, link_{link}, config_{config}, rng_{rng} {
  if (config_.mean_rate_bps <= 0.0 || config_.bursts_per_s <= 0.0 ||
      config_.packet_bytes == 0) {
    throw std::invalid_argument{"CrossTraffic: rates and packet size must be positive"};
  }
}

void CrossTraffic::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void CrossTraffic::stop() {
  running_ = false;
  next_.cancel();
}

void CrossTraffic::schedule_next() {
  if (!running_) return;
  const double gap_s = rng_.exponential(config_.bursts_per_s);
  next_ = sim_.schedule_after(sim::Duration::seconds(gap_s), [this] {
    inject_burst();
    schedule_next();
  });
}

void CrossTraffic::inject_burst() {
  // Burst size chosen so mean_rate = bursts_per_s * E[burst_bytes] * 8.
  const double mean_burst_bytes = config_.mean_rate_bps / 8.0 / config_.bursts_per_s;
  const double mean_packets = std::max(1.0, mean_burst_bytes / config_.packet_bytes);
  // Geometric-ish burst length via an exponential draw.
  const auto packets = static_cast<std::uint64_t>(
      std::ceil(rng_.exponential(1.0 / mean_packets)));
  for (std::uint64_t i = 0; i < packets; ++i) {
    TcpSegment filler;
    filler.connection_id = config_.connection_id;
    filler.payload_bytes = config_.packet_bytes;
    filler.flags = TcpFlag::kAck;
    // Offered regardless of queue state; drops are the point.
    if (link_.send(filler)) {
      ++packets_;
      bytes_ += config_.packet_bytes;
    }
  }
}

}  // namespace vstream::net
