// One construction point for a fully-wired Path.
//
// Before this builder existed, session.cpp, the bench support code, and the
// examples each hand-wired their own combination of loss model, capture
// tap, and cross-traffic onto a freshly built Path. `PathBuilder` puts all
// of those attachments — plus the fault-injection `ImpairmentSchedule` —
// behind one fluent API, so a scenario's network is described in one place:
//
//   auto path = net::PathBuilder{sim, profile, rng}
//                   .impairments(std::move(schedule))
//                   .cross_traffic({.mean_rate_bps = 20e6})
//                   .build();
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "net/cross_traffic.hpp"
#include "net/dynamics.hpp"
#include "net/path.hpp"

namespace vstream::net {

class PathBuilder {
 public:
  /// `rng` is the session stream; the builder forks tagged children for the
  /// loss models and cross-traffic so attachments stay decorrelated.
  PathBuilder(sim::Simulator& sim, NetworkProfile profile, sim::Rng& rng)
      : sim_{sim}, profile_{profile}, rng_{&rng} {}

  /// Override the profile-derived loss model on the data (down) link.
  PathBuilder& down_loss(std::unique_ptr<LossModel> loss) {
    down_loss_ = std::move(loss);
    return *this;
  }

  /// Install a direction-tagged tap on both links (capture hook).
  PathBuilder& tap(std::function<void(sim::SimTime, const TcpSegment&, Direction, LinkEvent)> t) {
    tap_ = std::move(t);
    return *this;
  }

  /// Attach a fault-injection schedule to the data (down) link. Validated
  /// at build().
  PathBuilder& impairments(ImpairmentSchedule schedule) {
    impairments_ = std::move(schedule);
    return *this;
  }

  /// Route server transmissions through `ingress` (a shared bottleneck
  /// link) instead of the path's own down link. Non-owning; must outlive
  /// the built path.
  PathBuilder& down_ingress(Link& ingress) {
    down_ingress_ = &ingress;
    return *this;
  }

  /// Inject Poisson cross-traffic bursts onto the down link; the generator
  /// is owned by the Path and started at build().
  PathBuilder& cross_traffic(CrossTraffic::Config config) {
    cross_ = config;
    return *this;
  }

  /// Assemble the path with every attachment applied.
  [[nodiscard]] std::unique_ptr<Path> build();

 private:
  sim::Simulator& sim_;
  NetworkProfile profile_;
  sim::Rng* rng_;
  std::unique_ptr<LossModel> down_loss_;
  std::function<void(sim::SimTime, const TcpSegment&, Direction, LinkEvent)> tap_;
  ImpairmentSchedule impairments_;
  std::optional<CrossTraffic::Config> cross_;
  Link* down_ingress_{nullptr};
};

}  // namespace vstream::net
