#include "net/segment.hpp"

namespace vstream::net {

std::string TcpSegment::flag_string() const {
  std::string s;
  if (has(TcpFlag::kSyn)) s += 'S';
  if (has(TcpFlag::kFin)) s += 'F';
  if (has(TcpFlag::kRst)) s += 'R';
  if (has(TcpFlag::kPsh)) s += 'P';
  if (has(TcpFlag::kAck)) s += 'A';
  // Assign a char (not a literal): GCC 12's -Wrestrict false-fires on
  // assigning a string literal right after in-place appends.
  if (s.empty()) s = '-';
  return s;
}

}  // namespace vstream::net
