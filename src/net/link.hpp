// Unidirectional link: serialisation at a fixed rate, drop-tail queue,
// propagation delay, and a pluggable stochastic loss model.
//
// A tap hook observes every link event (enqueue, transmit, deliver, drops)
// so the capture module can play the role tcpdump played in the paper.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "net/dynamics.hpp"
#include "net/loss_model.hpp"
#include "net/segment.hpp"
#include "obs/span.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace vstream::obs {
class Counter;
class Gauge;
}

namespace vstream::net {

enum class LinkEvent : std::uint8_t {
  kEnqueue,    ///< accepted into the transmit queue
  kTransmit,   ///< serialisation onto the wire completed
  kDeliver,    ///< arrived at the far end
  kDropQueue,  ///< rejected: queue full
  kDropLoss,   ///< lost on the wire (loss model)
  kDropFault,  ///< dropped by an active blackout window (fault injection)
};

class Link {
 public:
  struct Config {
    double rate_bps{100e6};
    sim::Duration prop_delay{sim::Duration::millis(10)};
    std::size_t queue_limit_bytes{256 * 1024};
  };

  struct Counters {
    std::uint64_t enqueued{0};
    std::uint64_t delivered{0};
    std::uint64_t dropped_queue{0};
    std::uint64_t dropped_loss{0};
    std::uint64_t dropped_fault{0};  ///< blackout-window drops
    std::uint64_t bytes_delivered{0};
    std::uint64_t fault_windows{0};  ///< impairment windows entered so far
  };

  Link(sim::Simulator& sim, Config config, std::unique_ptr<LossModel> loss, sim::Rng rng);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Far-end delivery callback. Must be set before the first send.
  void set_receiver(std::function<void(const TcpSegment&)> receiver) {
    receiver_ = std::move(receiver);
  }

  /// Observation hook for capture; may be empty.
  void set_tap(std::function<void(sim::SimTime, const TcpSegment&, LinkEvent)> tap) {
    tap_ = std::move(tap);
  }

  /// Offer a segment to the link. Returns false if dropped at the queue.
  bool send(const TcpSegment& segment);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t queued_bytes() const { return queued_bytes_; }

  /// One-way latency of an empty link for a segment of `bytes` payload.
  [[nodiscard]] sim::Duration unloaded_latency(std::uint32_t payload_bytes) const;

  /// Change the serialisation rate mid-run (models congestion onset or
  /// relief). Applies to packets enqueued from now on. This sets the *base*
  /// rate; an active rate-scale impairment window still multiplies it.
  void set_rate(double rate_bps);

  /// Attach a fault-injection schedule (validated here; throws on nonsense).
  /// Each window's start/end transitions are scheduled on the sim clock
  /// immediately, so the schedule must be attached before the run starts or
  /// with every window still in the future. One schedule per link.
  void set_impairments(ImpairmentSchedule schedule);

  /// Base rate x the active rate-scale factor (1 outside windows).
  [[nodiscard]] double effective_rate_bps() const { return config_.rate_bps * rate_factor_; }
  [[nodiscard]] bool blackout_active() const { return blackout_depth_ > 0; }

 private:
  void notify(const TcpSegment& segment, LinkEvent event);
  void apply_window(const ImpairmentWindow& window, bool begin);
  void emit_fault_event(ImpairmentKind kind, bool begin);

  sim::Simulator& sim_;
  Config config_;
  std::unique_ptr<LossModel> loss_;
  sim::Rng rng_;
  std::function<void(const TcpSegment&)> receiver_;
  std::function<void(sim::SimTime, const TcpSegment&, LinkEvent)> tap_;
  sim::SimTime busy_until_{sim::SimTime::zero()};
  std::size_t queued_bytes_{0};
  Counters counters_;

  // Fault-injection state, driven by the attached ImpairmentSchedule.
  ImpairmentSchedule impairments_;
  double rate_factor_{1.0};
  sim::Duration extra_delay_{sim::Duration::zero()};
  std::unique_ptr<LossModel> overlay_loss_;  ///< live only inside a burst window
  std::uint32_t blackout_depth_{0};          ///< nested same-instant transitions
  /// One episode span per impairment kind (the schedule validator rejects
  /// same-kind overlap, so one open window per kind is an invariant).
  std::array<obs::Span, 4> fault_spans_;

  // Cached registry instruments (shared across all links of one world);
  // null when the world runs unobserved.
  obs::Counter* ctr_delivered_{nullptr};
  obs::Counter* ctr_drops_queue_{nullptr};
  obs::Counter* ctr_drops_loss_{nullptr};
  obs::Counter* ctr_drops_fault_{nullptr};
  obs::Counter* ctr_fault_windows_{nullptr};
  obs::Gauge* gauge_queue_high_water_{nullptr};
};

}  // namespace vstream::net
