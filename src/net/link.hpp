// Unidirectional link: serialisation at a fixed rate, drop-tail queue,
// propagation delay, and a pluggable stochastic loss model.
//
// A tap hook observes every link event (enqueue, transmit, deliver, drops)
// so the capture module can play the role tcpdump played in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/loss_model.hpp"
#include "net/segment.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace vstream::obs {
class Counter;
class Gauge;
}

namespace vstream::net {

enum class LinkEvent : std::uint8_t {
  kEnqueue,    ///< accepted into the transmit queue
  kTransmit,   ///< serialisation onto the wire completed
  kDeliver,    ///< arrived at the far end
  kDropQueue,  ///< rejected: queue full
  kDropLoss,   ///< lost on the wire (loss model)
};

class Link {
 public:
  struct Config {
    double rate_bps{100e6};
    sim::Duration prop_delay{sim::Duration::millis(10)};
    std::size_t queue_limit_bytes{256 * 1024};
  };

  struct Counters {
    std::uint64_t enqueued{0};
    std::uint64_t delivered{0};
    std::uint64_t dropped_queue{0};
    std::uint64_t dropped_loss{0};
    std::uint64_t bytes_delivered{0};
  };

  Link(sim::Simulator& sim, Config config, std::unique_ptr<LossModel> loss, sim::Rng rng);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Far-end delivery callback. Must be set before the first send.
  void set_receiver(std::function<void(const TcpSegment&)> receiver) {
    receiver_ = std::move(receiver);
  }

  /// Observation hook for capture; may be empty.
  void set_tap(std::function<void(sim::SimTime, const TcpSegment&, LinkEvent)> tap) {
    tap_ = std::move(tap);
  }

  /// Offer a segment to the link. Returns false if dropped at the queue.
  bool send(const TcpSegment& segment);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t queued_bytes() const { return queued_bytes_; }

  /// One-way latency of an empty link for a segment of `bytes` payload.
  [[nodiscard]] sim::Duration unloaded_latency(std::uint32_t payload_bytes) const;

  /// Change the serialisation rate mid-run (models congestion onset or
  /// relief). Applies to packets enqueued from now on.
  void set_rate(double rate_bps);

 private:
  void notify(const TcpSegment& segment, LinkEvent event);

  sim::Simulator& sim_;
  Config config_;
  std::unique_ptr<LossModel> loss_;
  sim::Rng rng_;
  std::function<void(const TcpSegment&)> receiver_;
  std::function<void(sim::SimTime, const TcpSegment&, LinkEvent)> tap_;
  sim::SimTime busy_until_{sim::SimTime::zero()};
  std::size_t queued_bytes_{0};
  Counters counters_;

  // Cached registry instruments (shared across all links of one world);
  // null when the world runs unobserved.
  obs::Counter* ctr_delivered_{nullptr};
  obs::Counter* ctr_drops_queue_{nullptr};
  obs::Counter* ctr_drops_loss_{nullptr};
  obs::Gauge* gauge_queue_high_water_{nullptr};
};

}  // namespace vstream::net
