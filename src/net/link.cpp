#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/context.hpp"

namespace vstream::net {

Link::Link(sim::Simulator& sim, Config config, std::unique_ptr<LossModel> loss, sim::Rng rng)
    : sim_{sim}, config_{config}, loss_{std::move(loss)}, rng_{rng} {
  if (config_.rate_bps <= 0.0) throw std::invalid_argument{"Link: rate must be positive"};
  if (!loss_) loss_ = std::make_unique<NoLoss>();
  if (obs::ObsContext* obs = sim_.obs()) {
    auto& reg = obs->metrics();
    ctr_delivered_ = &reg.counter("net.segments_delivered");
    ctr_drops_queue_ = &reg.counter("net.drops_queue");
    ctr_drops_loss_ = &reg.counter("net.drops_loss");
    ctr_drops_fault_ = &reg.counter("net.drops_fault");
    ctr_fault_windows_ = &reg.counter("net.fault_windows");
    gauge_queue_high_water_ = &reg.gauge("net.queue_high_water_bytes");
  }
}

void Link::emit_fault_event(ImpairmentKind kind, bool begin) {
  if (obs::ObsContext* obs = sim_.obs(); obs != nullptr && obs->trace().active()) {
    obs::LinkFault ev;
    ev.t_s = sim_.now().to_seconds();
    ev.kind = to_string(kind);
    ev.begin = begin;
    ev.rate_factor = blackout_active() ? 0.0 : rate_factor_;
    obs->trace().emit(ev);
  }
}

void Link::apply_window(const ImpairmentWindow& window, bool begin) {
  switch (window.kind) {
    case ImpairmentKind::kRateScale:
      rate_factor_ = begin ? window.rate_factor : 1.0;
      break;
    case ImpairmentKind::kDelaySpike:
      extra_delay_ = begin ? window.extra_delay : sim::Duration::zero();
      break;
    case ImpairmentKind::kBurstLoss:
      overlay_loss_ = begin ? make_bursty_loss(window.loss_rate, window.loss_burst_len) : nullptr;
      break;
    case ImpairmentKind::kBlackout:
      if (begin) {
        ++blackout_depth_;
      } else if (blackout_depth_ > 0) {
        --blackout_depth_;
      }
      break;
  }
  if (begin) {
    ++counters_.fault_windows;
    if (ctr_fault_windows_ != nullptr) ctr_fault_windows_->inc();
  }
  emit_fault_event(window.kind, begin);
  obs::Span& span = fault_spans_[static_cast<std::size_t>(window.kind)];
  if (begin) {
    if (!span.active()) {
      span = obs::open_span(sim_, obs::SpanCategory::kLink, to_string(window.kind));
    }
  } else {
    span.close("window_end");
  }
}

void Link::set_impairments(ImpairmentSchedule schedule) {
  schedule.validate();
  impairments_ = std::move(schedule);
  for (const auto& window : impairments_.windows()) {
    // Start before end even for zero-duration windows: schedule order is
    // the FIFO tie-break among equal timestamps.
    sim_.schedule_at(window.start, [this, window] { apply_window(window, true); });
    sim_.schedule_at(window.end(), [this, window] { apply_window(window, false); });
  }
}

void Link::notify(const TcpSegment& segment, LinkEvent event) {
  if (tap_) tap_(sim_.now(), segment, event);
}

void Link::set_rate(double rate_bps) {
  if (rate_bps <= 0.0) throw std::invalid_argument{"Link::set_rate: rate must be positive"};
  config_.rate_bps = rate_bps;
}

sim::Duration Link::unloaded_latency(std::uint32_t payload_bytes) const {
  TcpSegment probe;
  probe.payload_bytes = payload_bytes;
  return sim::transmission_time(probe.wire_bytes(), config_.rate_bps) + config_.prop_delay;
}

bool Link::send(const TcpSegment& segment) {
  if (!receiver_) throw std::logic_error{"Link::send: receiver not set"};

  if (blackout_active()) {
    // Interface down: the segment never reaches the queue. TCP sees pure
    // silence and recovers via its RTO path once the window ends.
    ++counters_.dropped_fault;
    if (ctr_drops_fault_ != nullptr) ctr_drops_fault_->inc();
    notify(segment, LinkEvent::kDropFault);
    return false;
  }

  const std::size_t wire = segment.wire_bytes();
  if (queued_bytes_ + wire > config_.queue_limit_bytes) {
    ++counters_.dropped_queue;
    if (ctr_drops_queue_ != nullptr) ctr_drops_queue_->inc();
    notify(segment, LinkEvent::kDropQueue);
    return false;
  }

  ++counters_.enqueued;
  queued_bytes_ += wire;
  if (gauge_queue_high_water_ != nullptr) {
    gauge_queue_high_water_->set_max(static_cast<double>(queued_bytes_));
  }
  notify(segment, LinkEvent::kEnqueue);

  const sim::SimTime start = std::max(sim_.now(), busy_until_);
  const sim::SimTime tx_done = start + sim::transmission_time(wire, effective_rate_bps());
  busy_until_ = tx_done;

  // A segment is lost when the base model *or* an active burst-loss overlay
  // says drop. Both draws happen unconditionally while an overlay is live so
  // the base model's state machine advances identically either way.
  bool lost = loss_->should_drop(rng_);
  if (overlay_loss_) lost = overlay_loss_->should_drop(rng_) || lost;

  // Serialisation completes: the segment leaves the queue. These are the
  // two busiest scheduling sites in the tree — the static_asserts pin
  // their closures to the SimCallback SBO fast path at compile time, so a
  // future field on TcpSegment that pushes [this, segment, lost] past 128
  // bytes fails the build here instead of silently heap-allocating per
  // event (the AST wall's capture-size pass guards the sites it can size;
  // these two are proven exactly).
  auto transmit = [this, segment, lost] {
    queued_bytes_ -= segment.wire_bytes();
    notify(segment, LinkEvent::kTransmit);
    if (lost) {
      ++counters_.dropped_loss;
      if (ctr_drops_loss_ != nullptr) ctr_drops_loss_->inc();
      notify(segment, LinkEvent::kDropLoss);
      return;
    }
    auto deliver = [this, segment] {
      ++counters_.delivered;
      if (ctr_delivered_ != nullptr) ctr_delivered_->inc();
      counters_.bytes_delivered += segment.wire_bytes();
      notify(segment, LinkEvent::kDeliver);
      receiver_(segment);
    };
    static_assert(sim::SimCallback::fits_inline<decltype(deliver)>(),
                  "Link delivery closure must stay on the SimCallback SBO fast path");
    sim_.schedule_after(config_.prop_delay + extra_delay_, std::move(deliver));
  };
  static_assert(sim::SimCallback::fits_inline<decltype(transmit)>(),
                "Link transmit closure must stay on the SimCallback SBO fast path");
  sim_.schedule_at(tx_done, std::move(transmit));
  return true;
}

}  // namespace vstream::net
