#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/context.hpp"

namespace vstream::net {

Link::Link(sim::Simulator& sim, Config config, std::unique_ptr<LossModel> loss, sim::Rng rng)
    : sim_{sim}, config_{config}, loss_{std::move(loss)}, rng_{rng} {
  if (config_.rate_bps <= 0.0) throw std::invalid_argument{"Link: rate must be positive"};
  if (!loss_) loss_ = std::make_unique<NoLoss>();
  if (obs::ObsContext* obs = sim_.obs()) {
    auto& reg = obs->metrics();
    ctr_delivered_ = &reg.counter("net.segments_delivered");
    ctr_drops_queue_ = &reg.counter("net.drops_queue");
    ctr_drops_loss_ = &reg.counter("net.drops_loss");
    gauge_queue_high_water_ = &reg.gauge("net.queue_high_water_bytes");
  }
}

void Link::notify(const TcpSegment& segment, LinkEvent event) {
  if (tap_) tap_(sim_.now(), segment, event);
}

void Link::set_rate(double rate_bps) {
  if (rate_bps <= 0.0) throw std::invalid_argument{"Link::set_rate: rate must be positive"};
  config_.rate_bps = rate_bps;
}

sim::Duration Link::unloaded_latency(std::uint32_t payload_bytes) const {
  TcpSegment probe;
  probe.payload_bytes = payload_bytes;
  return sim::transmission_time(probe.wire_bytes(), config_.rate_bps) + config_.prop_delay;
}

bool Link::send(const TcpSegment& segment) {
  if (!receiver_) throw std::logic_error{"Link::send: receiver not set"};

  const std::size_t wire = segment.wire_bytes();
  if (queued_bytes_ + wire > config_.queue_limit_bytes) {
    ++counters_.dropped_queue;
    if (ctr_drops_queue_ != nullptr) ctr_drops_queue_->inc();
    notify(segment, LinkEvent::kDropQueue);
    return false;
  }

  ++counters_.enqueued;
  queued_bytes_ += wire;
  if (gauge_queue_high_water_ != nullptr) {
    gauge_queue_high_water_->set_max(static_cast<double>(queued_bytes_));
  }
  notify(segment, LinkEvent::kEnqueue);

  const sim::SimTime start = std::max(sim_.now(), busy_until_);
  const sim::SimTime tx_done = start + sim::transmission_time(wire, config_.rate_bps);
  busy_until_ = tx_done;

  const bool lost = loss_->should_drop(rng_);

  // Serialisation completes: the segment leaves the queue.
  sim_.schedule_at(tx_done, [this, segment, lost] {
    queued_bytes_ -= segment.wire_bytes();
    notify(segment, LinkEvent::kTransmit);
    if (lost) {
      ++counters_.dropped_loss;
      if (ctr_drops_loss_ != nullptr) ctr_drops_loss_->inc();
      notify(segment, LinkEvent::kDropLoss);
      return;
    }
    sim_.schedule_after(config_.prop_delay, [this, segment] {
      ++counters_.delivered;
      if (ctr_delivered_ != nullptr) ctr_delivered_->inc();
      counters_.bytes_delivered += segment.wire_bytes();
      notify(segment, LinkEvent::kDeliver);
      receiver_(segment);
    });
  });
  return true;
}

}  // namespace vstream::net
