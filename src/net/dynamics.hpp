// Fault-injection dynamics: scripted time-varying impairments for links.
//
// The paper's vantage points sat on *shared* uplinks whose conditions moved
// over a session (congestion onset, wireless fades, route changes); the
// static NetworkProfile freezes them at session start. An
// `ImpairmentSchedule` is a validated list of timed windows — rate scaling,
// delay spikes, burst-loss overlays, full blackouts — that a `Link`
// consumes via `Link::set_impairments`. Transitions are driven entirely by
// the sim clock (sim::SimTime), so a faulted run is digest-deterministic
// exactly like a healthy one; the random generators draw every parameter
// from a session-forked `sim::Rng`.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace vstream::net {

enum class ImpairmentKind : std::uint8_t {
  kRateScale,   ///< serialisation rate scaled by `rate_factor`
  kDelaySpike,  ///< `extra_delay` added to the propagation delay
  kBurstLoss,   ///< Gilbert-Elliott overlay layered over the base LossModel
  kBlackout,    ///< link down: every offered segment is dropped
};

[[nodiscard]] const char* to_string(ImpairmentKind kind);

struct ImpairmentWindow {
  ImpairmentKind kind{ImpairmentKind::kBlackout};
  sim::SimTime start{sim::SimTime::zero()};
  sim::Duration duration{sim::Duration::zero()};
  double rate_factor{1.0};                            ///< kRateScale
  sim::Duration extra_delay{sim::Duration::zero()};   ///< kDelaySpike
  double loss_rate{0.0};                              ///< kBurstLoss
  double loss_burst_len{1.0};                         ///< kBurstLoss

  [[nodiscard]] sim::SimTime end() const { return start + duration; }

  friend bool operator==(const ImpairmentWindow&, const ImpairmentWindow&) = default;
};

/// A deterministic script of link impairments. Windows of *different* kinds
/// may overlap (a delay spike during a congestion episode is realistic);
/// windows of the same kind may not — `validate()` rejects them, because
/// two simultaneous rate factors or overlay loss models have no well-defined
/// composition. Zero-duration windows are legal no-ops (the start and end
/// transitions fire back-to-back at the same instant), and a window may
/// extend past the capture horizon — the schedule simply ends mid-window.
class ImpairmentSchedule {
 public:
  /// Scale the link's serialisation rate by `factor` (in (0, ...)) for the
  /// window. factor < 1 models congestion onset; > 1 models relief.
  ImpairmentSchedule& rate_scale(sim::SimTime start, sim::Duration duration, double factor);

  /// Add `extra` to the propagation delay for the window (bufferbloat on a
  /// shared segment, a route change through a longer path).
  ImpairmentSchedule& delay_spike(sim::SimTime start, sim::Duration duration,
                                  sim::Duration extra);

  /// Layer a Gilbert-Elliott loss overlay (average `rate`, mean burst
  /// length `burst_len` packets) over the link's base loss model for the
  /// window. A segment is dropped when either model says drop.
  ImpairmentSchedule& burst_loss(sim::SimTime start, sim::Duration duration, double rate,
                                 double burst_len = 4.0);

  /// Take the link down for the window: every offered segment is dropped
  /// and counted as a fault drop.
  ImpairmentSchedule& blackout(sim::SimTime start, sim::Duration duration);

  /// Convenience: `count` blackouts of `down` each, separated by `up` of
  /// healthy link, starting at `first` — the classic link-flap pattern.
  ImpairmentSchedule& link_flap(sim::SimTime first, sim::Duration down, sim::Duration up,
                                std::size_t count);

  /// Throws std::invalid_argument on nonsense: negative durations or
  /// parameters out of range, or same-kind windows that overlap.
  void validate() const;

  [[nodiscard]] bool empty() const { return windows_.empty(); }
  [[nodiscard]] const std::vector<ImpairmentWindow>& windows() const { return windows_; }

  friend bool operator==(const ImpairmentSchedule&, const ImpairmentSchedule&) = default;

 private:
  std::vector<ImpairmentWindow> windows_;
};

// ---- random schedule generators ------------------------------------------
// All draws come from the caller's Rng (fork a tagged child per purpose), so
// a generated schedule is a pure function of the seed.

/// Poisson link-flaps over [0, horizon_s): blackout arrivals at
/// `flaps_per_min`, each with an exponential duration of mean `mean_down_s`.
[[nodiscard]] ImpairmentSchedule random_link_flaps(sim::Rng& rng, double horizon_s,
                                                   double flaps_per_min, double mean_down_s);

/// Poisson congestion episodes over [0, horizon_s): rate-scale windows with
/// factors uniform in [min_factor, 1), durations exponential with mean
/// `mean_episode_s`.
[[nodiscard]] ImpairmentSchedule random_congestion(sim::Rng& rng, double horizon_s,
                                                   double episodes_per_min, double min_factor,
                                                   double mean_episode_s);

}  // namespace vstream::net
