// Viewer-behaviour models from the measurement literature the paper builds
// on: Zipf-like video popularity (Cha et al.), early abandonment (Finamore
// et al.: 60% of videos watched for less than 20% of their duration; Gill
// et al.: 80% of interruptions due to lack of interest), and the Huang et
// al. observation that viewing time decreases as the video gets longer.
// These drive the interruption (beta) draws of the Section 6.2 model and
// the population mixes of the migration scenarios.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/rng.hpp"

namespace vstream::video {

/// Zipf(s) sampler over ranks 0..n-1 (rank 0 most popular).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t sample(sim::Rng& rng) const;
  /// P(rank).
  [[nodiscard]] double probability(std::size_t rank) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Watch-fraction (beta) model.
struct ViewingModel {
  /// Fraction of sessions abandoned early (Finamore: 0.6).
  double early_quit_fraction{0.6};
  /// Early quitters watch U[min_beta, early_beta_max] of the video.
  double min_beta{0.01};
  double early_beta_max{0.2};
  /// Everyone else watches U[early_beta_max, 1]; a `finish_fraction` of
  /// them watches to the very end (beta = 1).
  double finish_fraction{0.2};
  /// Huang et al.: longer videos are watched for smaller fractions. The
  /// early-quit probability grows with duration around this pivot.
  double duration_pivot_s{210.0};
  double duration_sensitivity{0.15};

  /// Draw the fraction of a `duration_s`-long video watched before the
  /// viewer loses interest; 1.0 means watched to completion.
  [[nodiscard]] double draw_watch_fraction(sim::Rng& rng, double duration_s) const;

  /// Probability this video is abandoned early, given its duration.
  [[nodiscard]] double early_quit_probability(double duration_s) const;
};

}  // namespace vstream::video
