// Container-header metadata extraction, mirroring Section 4/5 of the paper.
//
// For Flash (FLV) videos, the encoding rate is read directly from the file
// header. For HTML5/WebM videos the paper found an *invalid frame-rate
// entry* in the header, so the encoding rate had to be estimated as
// Content-Length divided by the video duration. We reproduce both paths —
// including the WebM quirk — because the estimation error explains the wide
// accumulation-ratio spread in Figs 5(b)/6 of the paper.
#pragma once

#include <cstdint>
#include <optional>

#include "video/metadata.hpp"

namespace vstream::video {

/// What a measurement tool can see in the first bytes of the media file.
struct ContainerHeader {
  Container container{Container::kFlash};
  /// Declared encoding rate; absent when the header entry is unusable
  /// (WebM's invalid frame-rate entry).
  std::optional<double> declared_rate_bps;
  double declared_duration_s{0.0};
};

/// Build the header a given video would carry on the wire.
[[nodiscard]] ContainerHeader make_header(const VideoMeta& video);

/// The paper's estimator for videos without a usable declared rate:
/// Content-Length (bytes) divided by duration. `noise_factor` models the
/// estimation error (auxiliary data in the container, duration rounding);
/// 1.0 means a perfect estimate.
[[nodiscard]] double estimate_rate_from_content_length(std::uint64_t content_length_bytes,
                                                       double duration_s,
                                                       double noise_factor = 1.0);

/// Resolve the encoding rate the way the paper's pipeline does: header
/// first, Content-Length estimate otherwise.
[[nodiscard]] double resolve_encoding_rate(const ContainerHeader& header,
                                           std::uint64_t content_length_bytes,
                                           double noise_factor = 1.0);

}  // namespace vstream::video
