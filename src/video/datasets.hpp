// Synthetic equivalents of the paper's six datasets (Section 4.1).
//
//   YouFlash : 5000 YouTube Flash videos, 0.2-1.5 Mbps, 240p/360p
//   YouHD    : 2000 YouTube HD videos (Flash container), 0.2-4.8 Mbps, 720p
//   YouHtml  : 2500 videos from YouFlash + 500 from YouHD, re-encoded for
//              HTML5/WebM at 0.2-2.5 Mbps, default 360p
//   YouMob   : mobile-app-playable videos, 0.2-2.7 Mbps
//   NetPC    : 200 Netflix titles (movies/episodes, multi-rate ladder)
//   NetMob   : 50 titles sampled from NetPC
//
// Durations follow a log-normal (YouTube's classic shape, median ≈ 3-4 min)
// or long uniform (Netflix features). All draws are deterministic per seed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "video/metadata.hpp"

namespace vstream::video {

enum class DatasetId : std::uint8_t {
  kYouFlash,
  kYouHd,
  kYouHtml,
  kYouMob,
  kNetPc,
  kNetMob,
};

[[nodiscard]] std::string to_string(DatasetId id);

struct Dataset {
  DatasetId id{DatasetId::kYouFlash};
  std::vector<VideoMeta> videos;

  [[nodiscard]] std::size_t size() const { return videos.size(); }
};

/// Paper-sized dataset (e.g. 5000 videos for YouFlash). `count` overrides
/// the paper size when a smaller sample suffices (tests, quick benches);
/// 0 means "paper size".
[[nodiscard]] Dataset make_dataset(DatasetId id, sim::Rng& rng, std::size_t count = 0);

/// The Netflix encoding ladder used for NetPC/NetMob titles (bps). The 2011
/// Silverlight client downloaded fragments at *all* of these during the
/// buffering phase (paper §5.2.1, citing Akhshabi et al.).
[[nodiscard]] const std::vector<double>& netflix_rate_ladder();

/// Subset of the ladder available to the iPad client (paper hypothesises a
/// reduced set explains the ~10 MB vs ~50 MB buffering difference).
[[nodiscard]] const std::vector<double>& netflix_ipad_ladder();

}  // namespace vstream::video
