#include "video/viewing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vstream::video {

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: empty catalogue"};
  if (exponent < 0.0) throw std::invalid_argument{"ZipfSampler: negative exponent"};
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(sim::Rng& rng) const {
  const double u = rng.uniform(0.0, 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range{"ZipfSampler::probability: bad rank"};
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double ViewingModel::early_quit_probability(double duration_s) const {
  if (duration_s <= 0.0) throw std::invalid_argument{"ViewingModel: non-positive duration"};
  // Logistic-ish adjustment around the pivot: longer videos quit earlier.
  const double shift = duration_sensitivity * std::log(duration_s / duration_pivot_s);
  return std::clamp(early_quit_fraction + shift, 0.05, 0.95);
}

double ViewingModel::draw_watch_fraction(sim::Rng& rng, double duration_s) const {
  const double p_early = early_quit_probability(duration_s);
  if (rng.bernoulli(p_early)) {
    return rng.uniform(min_beta, early_beta_max);
  }
  if (rng.bernoulli(finish_fraction)) return 1.0;
  return rng.uniform(early_beta_max, 1.0);
}

}  // namespace vstream::video
