#include "video/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vstream::video {
namespace {

// YouTube-like duration distribution: log-normal with median ~210 s,
// clipped to [30 s, 3600 s].
double youtube_duration(sim::Rng& rng) {
  const double d = rng.lognormal(std::log(210.0), 0.8);
  return std::clamp(d, 30.0, 3600.0);
}

// Netflix features and episodes: 20 min to 2 h.
double netflix_duration(sim::Rng& rng) { return rng.uniform(1200.0, 7200.0); }

VideoMeta make_youtube_video(sim::Rng& rng, std::string id, double lo_mbps, double hi_mbps,
                             Container container, Resolution fallback_res) {
  VideoMeta v;
  v.id = std::move(id);
  v.duration_s = youtube_duration(rng);
  v.encoding_bps = rng.uniform(lo_mbps * 1e6, hi_mbps * 1e6);
  v.container = container;
  v.resolution = fallback_res;
  return v;
}

}  // namespace

std::string to_string(DatasetId id) {
  switch (id) {
    case DatasetId::kYouFlash:
      return "YouFlash";
    case DatasetId::kYouHd:
      return "YouHD";
    case DatasetId::kYouHtml:
      return "YouHtml";
    case DatasetId::kYouMob:
      return "YouMob";
    case DatasetId::kNetPc:
      return "NetPC";
    case DatasetId::kNetMob:
      return "NetMob";
  }
  return "?";
}

const std::vector<double>& netflix_rate_ladder() {
  // 2011-era Netflix ladder (kbps): 375, 560, 1050, 1750, 2350, 3600.
  static const std::vector<double> kLadder{375e3, 560e3, 1050e3, 1750e3, 2350e3, 3600e3};
  return kLadder;
}

const std::vector<double>& netflix_ipad_ladder() {
  static const std::vector<double> kLadder{560e3, 1750e3};
  return kLadder;
}

Dataset make_dataset(DatasetId id, sim::Rng& rng, std::size_t count) {
  Dataset ds;
  ds.id = id;

  const auto paper_size = [id]() -> std::size_t {
    switch (id) {
      case DatasetId::kYouFlash:
        return 5000;
      case DatasetId::kYouHd:
        return 2000;
      case DatasetId::kYouHtml:
        return 3000;
      case DatasetId::kYouMob:
        return 1000;
      case DatasetId::kNetPc:
        return 200;
      case DatasetId::kNetMob:
        return 50;
    }
    throw std::invalid_argument{"make_dataset: unknown dataset"};
  }();
  const std::size_t n = count == 0 ? paper_size : count;
  ds.videos.reserve(n);

  switch (id) {
    case DatasetId::kYouFlash:
      for (std::size_t i = 0; i < n; ++i) {
        auto v = make_youtube_video(rng, "yf" + std::to_string(i), 0.2, 1.5, Container::kFlash,
                                    rng.bernoulli(0.5) ? Resolution::k240p : Resolution::k360p);
        ds.videos.push_back(std::move(v));
      }
      break;

    case DatasetId::kYouHd:
      for (std::size_t i = 0; i < n; ++i) {
        ds.videos.push_back(make_youtube_video(rng, "yh" + std::to_string(i), 0.2, 4.8,
                                               Container::kFlashHd, Resolution::k720p));
      }
      break;

    case DatasetId::kYouHtml: {
      // 2500/3000 from the Flash population, 500/3000 from HD, re-encoded
      // into WebM at 0.2-2.5 Mbps, streamed at the 360p default.
      const std::size_t from_hd = std::max<std::size_t>(1, n / 6);
      for (std::size_t i = 0; i < n; ++i) {
        const bool hd_origin = i < from_hd;
        auto v = make_youtube_video(rng, "yw" + std::to_string(i), 0.2, hd_origin ? 2.5 : 1.5,
                                    Container::kHtml5, Resolution::k360p);
        ds.videos.push_back(std::move(v));
      }
      break;
    }

    case DatasetId::kYouMob:
      for (std::size_t i = 0; i < n; ++i) {
        ds.videos.push_back(make_youtube_video(rng, "ym" + std::to_string(i), 0.2, 2.7,
                                               Container::kHtml5, Resolution::k360p));
      }
      break;

    case DatasetId::kNetPc:
    case DatasetId::kNetMob:
      for (std::size_t i = 0; i < n; ++i) {
        VideoMeta v;
        v.id = (id == DatasetId::kNetPc ? "np" : "nm") + std::to_string(i);
        v.duration_s = netflix_duration(rng);
        v.container = Container::kSilverlight;
        v.resolution = Resolution::k480p;
        v.available_rates_bps = netflix_rate_ladder();
        // Nominal rate: the top ladder entry (adaptation happens at play
        // time against the end-to-end available bandwidth).
        v.encoding_bps = v.available_rates_bps.back();
        ds.videos.push_back(std::move(v));
      }
      break;
  }
  return ds;
}

}  // namespace vstream::video
