#include "video/container_header.hpp"

#include <stdexcept>

namespace vstream::video {

std::string to_string(Container c) {
  switch (c) {
    case Container::kFlash:
      return "Flash";
    case Container::kFlashHd:
      return "Flash-HD";
    case Container::kHtml5:
      return "HTML5";
    case Container::kSilverlight:
      return "Silverlight";
  }
  return "?";
}

std::string to_string(Resolution r) { return std::to_string(static_cast<int>(r)) + "p"; }

ContainerHeader make_header(const VideoMeta& video) {
  ContainerHeader h;
  h.container = video.container;
  h.declared_duration_s = video.duration_s;
  switch (video.container) {
    case Container::kFlash:
    case Container::kFlashHd:
      // FLV metadata carries a usable bitrate.
      h.declared_rate_bps = video.encoding_bps;
      break;
    case Container::kHtml5:
      // The paper observed an invalid frame-rate entry in WebM headers, so
      // no usable declared rate is available.
      h.declared_rate_bps = std::nullopt;
      break;
    case Container::kSilverlight:
      // Netflix rate depends on the adaptive selection, not the header.
      h.declared_rate_bps = std::nullopt;
      break;
  }
  return h;
}

double estimate_rate_from_content_length(std::uint64_t content_length_bytes, double duration_s,
                                         double noise_factor) {
  if (duration_s <= 0.0) {
    throw std::invalid_argument{"estimate_rate_from_content_length: non-positive duration"};
  }
  if (noise_factor <= 0.0) {
    throw std::invalid_argument{"estimate_rate_from_content_length: non-positive noise factor"};
  }
  return static_cast<double>(content_length_bytes) * 8.0 / duration_s * noise_factor;
}

double resolve_encoding_rate(const ContainerHeader& header, std::uint64_t content_length_bytes,
                             double noise_factor) {
  if (header.declared_rate_bps.has_value()) return *header.declared_rate_bps;
  return estimate_rate_from_content_length(content_length_bytes, header.declared_duration_s,
                                           noise_factor);
}

}  // namespace vstream::video
