// Binary container headers: FLV and WebM/EBML, as seen in the first bytes
// of the streamed file.
//
// The paper's methodology reads the encoding rate "from the header of the
// video file being streamed" for Flash, and fails to for WebM because of an
// invalid frame-rate entry (Section 5). These writers/parsers produce and
// consume real header bytes — an FLV header with an onMetaData script tag
// carrying `videodatarate`/`duration`, and a WebM EBML prefix whose
// duration is present but whose frame-rate field is deliberately written
// the way the paper found it: invalid.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "video/metadata.hpp"

namespace vstream::video {

/// Serialise the first bytes of an FLV file for this video: 9-byte FLV
/// header + PreviousTagSize0 + an onMetaData SCRIPTDATA tag with
/// `duration` (seconds) and `videodatarate` (kbps), AMF0-encoded.
[[nodiscard]] std::vector<std::uint8_t> write_flv_header(const VideoMeta& video);

/// Serialise a WebM/EBML prefix: EBML header (DocType "webm") + Segment +
/// Info with TimecodeScale and Duration, and a Video TrackEntry whose
/// FrameRate element is present but carries an invalid (zero-length)
/// payload — the quirk the paper hit.
[[nodiscard]] std::vector<std::uint8_t> write_webm_header(const VideoMeta& video);

struct ParsedContainerHeader {
  Container container{Container::kFlash};
  std::optional<double> duration_s;
  std::optional<double> video_rate_bps;  ///< absent when unusable/invalid
};

/// Parse either header format (detected from the magic bytes). Throws
/// std::invalid_argument for unrecognised data.
[[nodiscard]] ParsedContainerHeader parse_container_header(std::span<const std::uint8_t> bytes);

}  // namespace vstream::video
