#include "video/container_bytes.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "check/contracts.hpp"

namespace vstream::video {
namespace {

// ------------------------------------------------------------------ bytes

void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8U));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u24be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  VSTREAM_PRECONDITION(v < (1U << 24U), "u24 field would silently truncate");
  out.push_back(static_cast<std::uint8_t>(v >> 16U));
  out.push_back(static_cast<std::uint8_t>(v >> 8U));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24U));
  out.push_back(static_cast<std::uint8_t>(v >> 16U));
  out.push_back(static_cast<std::uint8_t>(v >> 8U));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_f64be(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits{};
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(bits >> static_cast<unsigned>(shift)));
  }
}

double get_f64be(std::span<const std::uint8_t> bytes, std::size_t at) {
  if (at + 8 > bytes.size()) throw std::invalid_argument{"container: truncated double"};
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits = (bits << 8U) | bytes[at + static_cast<std::size_t>(i)];
  double v{};
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// -------------------------------------------------------------------- FLV

constexpr std::uint8_t kAmfNumber = 0x00;
constexpr std::uint8_t kAmfString = 0x02;
constexpr std::uint8_t kAmfEcmaArray = 0x08;

void put_amf_string_raw(std::vector<std::uint8_t>& out, const std::string& s) {
  VSTREAM_PRECONDITION(s.size() <= 0xFFFF, "AMF0 short string longer than its length field");
  put_u16be(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void put_amf_number_entry(std::vector<std::uint8_t>& out, const std::string& key, double value) {
  put_amf_string_raw(out, key);
  out.push_back(kAmfNumber);
  put_f64be(out, value);
}

}  // namespace

std::vector<std::uint8_t> write_flv_header(const VideoMeta& video) {
  // FLV file header. Built by direct construction rather than insert():
  // GCC 12's -O3 stringop-overflow analysis misfires on initializer-list
  // insert into an empty vector's reallocation path.
  std::vector<std::uint8_t> out{'F', 'L', 'V', 0x01, 0x01};  // version 1, video-only
  put_u32be(out, 9);                                   // header size
  put_u32be(out, 0);                                   // PreviousTagSize0

  // onMetaData script tag body (AMF0).
  std::vector<std::uint8_t> body;
  body.push_back(kAmfString);
  put_amf_string_raw(body, "onMetaData");
  body.push_back(kAmfEcmaArray);
  put_u32be(body, 2);  // approximate entry count
  put_amf_number_entry(body, "duration", video.duration_s);
  put_amf_number_entry(body, "videodatarate", video.encoding_bps / 1000.0);  // kbps
  body.insert(body.end(), {0x00, 0x00, 0x09});  // object end marker

  // Tag header: type 18 (script data), data size, timestamp 0, stream 0.
  out.push_back(18);
  put_u24be(out, static_cast<std::uint32_t>(body.size()));
  put_u24be(out, 0);   // timestamp
  out.push_back(0);    // timestamp extension
  put_u24be(out, 0);   // stream id
  out.insert(out.end(), body.begin(), body.end());
  put_u32be(out, static_cast<std::uint32_t>(11 + body.size()));  // PreviousTagSize1
  return out;
}

namespace {

// ------------------------------------------------------------------- EBML

void put_ebml_id(std::vector<std::uint8_t>& out, std::uint32_t id) {
  // IDs are stored with their length marker included; emit the minimal form.
  if (id > 0xFFFFFF) {
    put_u32be(out, id);
  } else if (id > 0xFFFF) {
    put_u24be(out, id);
  } else if (id > 0xFF) {
    put_u16be(out, static_cast<std::uint16_t>(id));
  } else {
    out.push_back(static_cast<std::uint8_t>(id));
  }
}

void put_ebml_size(std::vector<std::uint8_t>& out, std::uint64_t size) {
  // 8-byte vint keeps encoding trivial and unambiguous.
  VSTREAM_PRECONDITION(size < (1ULL << 56U), "EBML size exceeds an 8-byte vint payload");
  out.push_back(0x01);
  for (int shift = 48; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(size >> static_cast<unsigned>(shift)));
  }
}

void put_ebml_element(std::vector<std::uint8_t>& out, std::uint32_t id,
                      const std::vector<std::uint8_t>& payload) {
  put_ebml_id(out, id);
  put_ebml_size(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
}

constexpr std::uint32_t kIdEbml = 0x1A45DFA3;
constexpr std::uint32_t kIdDocType = 0x4282;
constexpr std::uint32_t kIdSegment = 0x18538067;
constexpr std::uint32_t kIdInfo = 0x1549A966;
constexpr std::uint32_t kIdTimecodeScale = 0x2AD7B1;
constexpr std::uint32_t kIdDuration = 0x4489;
constexpr std::uint32_t kIdTracks = 0x1654AE6B;
constexpr std::uint32_t kIdTrackEntry = 0xAE;
constexpr std::uint32_t kIdVideo = 0xE0;
constexpr std::uint32_t kIdFrameRate = 0x2383E3;

struct EbmlReader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos{0};

  [[nodiscard]] bool done() const { return pos >= bytes.size(); }

  std::uint32_t read_id() {
    if (done()) throw std::invalid_argument{"ebml: truncated id"};
    const std::uint8_t first = bytes[pos];
    int len = 0;
    for (int i = 7; i >= 4; --i) {
      if (first & (1U << static_cast<unsigned>(i))) {
        len = 8 - i;
        break;
      }
    }
    if (len == 0) throw std::invalid_argument{"ebml: bad id marker"};
    if (pos + static_cast<std::size_t>(len) > bytes.size()) {
      throw std::invalid_argument{"ebml: truncated id"};
    }
    std::uint32_t id = 0;
    for (int i = 0; i < len; ++i) id = (id << 8U) | bytes[pos++];
    return id;
  }

  std::uint64_t read_size() {
    if (done()) throw std::invalid_argument{"ebml: truncated size"};
    const std::uint8_t first = bytes[pos];
    int len = 0;
    for (int i = 7; i >= 0; --i) {
      if (first & (1U << static_cast<unsigned>(i))) {
        len = 8 - i;
        break;
      }
    }
    if (len == 0) throw std::invalid_argument{"ebml: bad size marker"};
    if (pos + static_cast<std::size_t>(len) > bytes.size()) {
      throw std::invalid_argument{"ebml: truncated size"};
    }
    std::uint64_t size = first & (0xFFU >> static_cast<unsigned>(len));
    ++pos;
    for (int i = 1; i < len; ++i) size = (size << 8U) | bytes[pos++];
    return size;
  }
};

bool is_master(std::uint32_t id) {
  return id == kIdEbml || id == kIdSegment || id == kIdInfo || id == kIdTracks ||
         id == kIdTrackEntry || id == kIdVideo;
}

void walk_ebml(EbmlReader& reader, std::size_t end, ParsedContainerHeader& out) {
  while (reader.pos < end) {
    const std::uint32_t id = reader.read_id();
    const std::uint64_t size = reader.read_size();
    const std::size_t payload_end = reader.pos + size;
    if (payload_end > reader.bytes.size()) throw std::invalid_argument{"ebml: overrun"};
    if (is_master(id)) {
      walk_ebml(reader, payload_end, out);
      continue;
    }
    if (id == kIdDuration && size == 8) {
      out.duration_s = get_f64be(reader.bytes, reader.pos) / 1000.0;  // ms -> s
    }
    if (id == kIdFrameRate) {
      // The paper's quirk: the element exists but its payload is invalid
      // (empty) — there is nothing to derive a rate from.
      if (size == 8) out.video_rate_bps = get_f64be(reader.bytes, reader.pos);
    }
    reader.pos = payload_end;
  }
}

}  // namespace

std::vector<std::uint8_t> write_webm_header(const VideoMeta& video) {
  std::vector<std::uint8_t> out;

  std::vector<std::uint8_t> ebml;
  std::vector<std::uint8_t> doctype{'w', 'e', 'b', 'm'};
  put_ebml_element(ebml, kIdDocType, doctype);
  put_ebml_element(out, kIdEbml, ebml);

  std::vector<std::uint8_t> info;
  std::vector<std::uint8_t> scale{0x0F, 0x42, 0x40};  // 1,000,000 ns
  put_ebml_element(info, kIdTimecodeScale, scale);
  std::vector<std::uint8_t> duration;
  put_f64be(duration, video.duration_s * 1000.0);  // in timecode units (ms)
  put_ebml_element(info, kIdDuration, duration);

  std::vector<std::uint8_t> video_el;
  put_ebml_element(video_el, kIdFrameRate, {});  // INVALID: empty payload
  std::vector<std::uint8_t> track;
  put_ebml_element(track, kIdVideo, video_el);
  std::vector<std::uint8_t> tracks;
  put_ebml_element(tracks, kIdTrackEntry, track);

  std::vector<std::uint8_t> segment;
  put_ebml_element(segment, kIdInfo, info);
  put_ebml_element(segment, kIdTracks, tracks);
  put_ebml_element(out, kIdSegment, segment);
  return out;
}

ParsedContainerHeader parse_container_header(std::span<const std::uint8_t> bytes) {
  if (bytes.size() >= 3 && bytes[0] == 'F' && bytes[1] == 'L' && bytes[2] == 'V') {
    ParsedContainerHeader out;
    out.container = Container::kFlash;
    // Scan the script-tag AMF payload for the two numeric entries.
    const auto find_number = [&bytes](const std::string& key) -> std::optional<double> {
      for (std::size_t i = 0; i + key.size() + 9 <= bytes.size(); ++i) {
        if (std::memcmp(bytes.data() + i, key.data(), key.size()) == 0 &&
            bytes[i + key.size()] == kAmfNumber) {
          return get_f64be(bytes, i + key.size() + 1);
        }
      }
      return std::nullopt;
    };
    out.duration_s = find_number("duration");
    if (const auto kbps = find_number("videodatarate")) out.video_rate_bps = *kbps * 1000.0;
    return out;
  }

  if (bytes.size() >= 4 && bytes[0] == 0x1A && bytes[1] == 0x45 && bytes[2] == 0xDF &&
      bytes[3] == 0xA3) {
    ParsedContainerHeader out;
    out.container = Container::kHtml5;
    EbmlReader reader{bytes, 0};
    walk_ebml(reader, bytes.size(), out);
    return out;
  }
  throw std::invalid_argument{"parse_container_header: unknown container magic"};
}

}  // namespace vstream::video
