// Video metadata: what the paper's datasets record per video.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vstream::video {

enum class Container : std::uint8_t {
  kFlash,       ///< Adobe Flash (FLV), YouTube default on PCs in 2011
  kFlashHd,     ///< Flash container carrying HD (720p) streams
  kHtml5,       ///< HTML5 <video> with the WebM codec
  kSilverlight, ///< Microsoft Silverlight (Netflix)
};

enum class Resolution : std::uint16_t {
  k240p = 240,
  k360p = 360,
  k480p = 480,
  k720p = 720,
  k1080p = 1080,
};

[[nodiscard]] std::string to_string(Container c);
[[nodiscard]] std::string to_string(Resolution r);

struct VideoMeta {
  std::string id;
  double duration_s{0.0};
  double encoding_bps{0.0};  ///< average video bitrate
  Resolution resolution{Resolution::k360p};
  Container container{Container::kFlash};

  /// Netflix titles are encoded at a ladder of rates; empty for YouTube.
  std::vector<double> available_rates_bps;

  [[nodiscard]] double encoding_mbps() const { return encoding_bps / 1e6; }
  [[nodiscard]] std::uint64_t size_bytes() const {
    return static_cast<std::uint64_t>(encoding_bps * duration_s / 8.0);
  }
  /// Size at a specific ladder rate (Netflix).
  [[nodiscard]] std::uint64_t size_bytes_at(double rate_bps) const {
    return static_cast<std::uint64_t>(rate_bps * duration_s / 8.0);
  }
};

}  // namespace vstream::video
