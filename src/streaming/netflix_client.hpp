// Netflix Silverlight / native-app client model (Section 5.2).
//
// At session start the client downloads video fragments at *every* rate of
// the encoding ladder (Akhshabi et al., cited by the paper) — which is why
// PC buffering amounts reach ~50 MB while the iPad, with a reduced ladder,
// downloads ~10 MB and the Android app ~40 MB. In steady state the client
// fetches blocks of the selected rate over many TCP connections (fresh
// connection per block on PCs/iPad -> short ON-OFF with an ack clock per
// connection; a reused connection with large blocks on Android -> long
// ON-OFF cycles).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "streaming/adaptive.hpp"
#include "streaming/fetch.hpp"

namespace vstream::streaming {

class NetflixClient {
 public:
  struct Profile {
    std::string name;
    std::vector<double> ladder_bps;
    double buffering_fragment_s{40.0};   ///< seconds of content per ladder rate
    std::uint64_t steady_block_bytes{2 * 1024 * 1024};
    double accumulation_ratio{1.2};
    bool fresh_connection_per_block{true};
    /// Fraction of the access bandwidth the rate selector may use.
    double target_rate_fraction{0.75};
    /// Extension: adapt the rate mid-stream from per-block throughput
    /// measurements (the paper models a fixed selection).
    bool adaptive{false};

    [[nodiscard]] static Profile pc();
    [[nodiscard]] static Profile ipad();
    [[nodiscard]] static Profile android();
  };

  NetflixClient(sim::Simulator& sim, FetchManager& fetches, const video::VideoMeta& video,
                Profile profile, double access_bandwidth_bps, ByteSink sink);

  void start();
  void stop();

  /// Hook for FetchManager::set_on_retry: a request timed out and is being
  /// retried. In adaptive mode this forces a one-rung bitrate downswitch so
  /// the re-requested blocks are cheaper to recover.
  void on_fetch_retry(std::uint32_t attempt);

  /// Ladder rate selected for steady-state playback (current rate when the
  /// adaptive extension is on).
  [[nodiscard]] double selected_rate_bps() const { return selected_rate_bps_; }
  [[nodiscard]] std::uint64_t bytes_fetched() const { return fetched_; }
  [[nodiscard]] std::uint64_t buffering_bytes_expected() const;
  [[nodiscard]] bool in_steady_state() const { return steady_; }
  /// Number of mid-stream rate switches (adaptive mode only).
  [[nodiscard]] std::size_t rate_switches() const {
    return controller_.has_value() ? controller_->switch_count() : 0;
  }

 private:
  void on_fragment_done();
  void on_cycle();
  void fetch_block();
  void update_cycle_period();

  sim::Simulator& sim_;
  FetchManager& fetches_;
  video::VideoMeta video_;
  Profile profile_;
  ByteSink sink_;
  double selected_rate_bps_{0.0};
  sim::PeriodicTimer cycle_timer_;
  std::size_t fragments_pending_{0};
  std::uint64_t offset_{0};
  std::uint64_t fetched_{0};
  bool steady_{false};
  bool stopped_{false};
  bool block_in_flight_{false};

  // Adaptive extension state.
  std::optional<AdaptiveRateController> controller_;
  double playback_start_s_{-1.0};
  double content_buffered_s_{0.0};
};

}  // namespace vstream::streaming
