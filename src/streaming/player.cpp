#include "streaming/player.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/contracts.hpp"
#include "obs/context.hpp"

namespace vstream::streaming {

Player::Player(sim::Simulator& sim, PlayerConfig config)
    : sim_{sim}, config_{config}, clock_{sim, config.tick, [this] { tick(); }} {
  if (config_.encoding_bps <= 0.0) throw std::invalid_argument{"Player: bad encoding rate"};
  if (config_.duration_s <= 0.0) throw std::invalid_argument{"Player: bad duration"};
  if (config_.watch_fraction.has_value() &&
      (*config_.watch_fraction <= 0.0 || *config_.watch_fraction > 1.0)) {
    throw std::invalid_argument{"Player: watch fraction outside (0,1]"};
  }
  if (obs::ObsContext* obs = sim_.obs()) {
    ctr_stalls_ = &obs->metrics().counter("player.stalls");
    ctr_interrupts_ = &obs->metrics().counter("player.interrupts");
    ctr_rebuffers_ = &obs->metrics().counter("player.rebuffers");
  }
  phase_span_ = obs::open_span(sim_, obs::SpanCategory::kPlayer, "buffering");
  clock_.start();
}

double Player::buffered_playback_s() const {
  return static_cast<double>(stats_.buffered_bytes()) * 8.0 / config_.encoding_bps;
}

void Player::on_bytes_downloaded(std::uint64_t bytes) {
  stats_.downloaded_bytes += bytes;
  stats_.max_buffered_bytes = std::max(stats_.max_buffered_bytes, stats_.buffered_bytes());
  maybe_start();
}

void Player::maybe_start() {
  if (playing_ || done_) return;
  const double threshold_bytes = config_.start_threshold_s * config_.encoding_bps / 8.0;
  const bool whole_video = stats_.downloaded_bytes >=
                           static_cast<std::uint64_t>(config_.duration_s * config_.encoding_bps / 8.0);
  if (static_cast<double>(stats_.buffered_bytes()) >= threshold_bytes || whole_video) {
    playing_ = true;
    if (!stats_.started) {
      stats_.started = true;
      stats_.start_time_s = sim_.now().to_seconds();
      phase_span_.close("started");
    } else if (stall_started_s_ >= 0.0) {
      // Recovered from a mid-playback stall: one rebuffer episode.
      ++stats_.rebuffer_count;
      stats_.longest_stall_s =
          std::max(stats_.longest_stall_s, sim_.now().to_seconds() - stall_started_s_);
      if (ctr_rebuffers_ != nullptr) ctr_rebuffers_->inc();
      phase_span_.close("recovered");
    }
    phase_span_ = obs::open_span(sim_, obs::SpanCategory::kPlayer, "steady");
    stall_started_s_ = -1.0;
  }
}

void Player::interrupt() {
  if (done_) return;
  done_ = true;
  playing_ = false;
  clock_.stop();
  stats_.interrupted = true;
  stats_.interrupted_at_s = sim_.now().to_seconds();
  phase_span_.close("interrupted");
  if (ctr_interrupts_ != nullptr) ctr_interrupts_->inc();
  if (obs::ObsContext* obs = sim_.obs(); obs != nullptr && obs->trace().active()) {
    obs->trace().emit(obs::PlayerInterrupt{sim_.now().to_seconds(), stats_.watched_s});
  }
  if (on_interrupt_) on_interrupt_();
}

void Player::tick() {
  if (done_) return;
  const double dt = config_.tick.to_seconds();
  if (!playing_) {
    // Rebuffering after a stall counts as stall time; the initial startup
    // wait does not.
    if (stats_.started) stats_.stall_time_s += dt;
    maybe_start();
    if (!playing_) return;
  }

  const auto want_bytes = static_cast<std::uint64_t>(config_.encoding_bps * dt / 8.0);
  const std::uint64_t have = stats_.buffered_bytes();

  if (have == 0 && stats_.watched_s < config_.duration_s) {
    // Stall: buffer ran dry mid-playback.
    ++stats_.stall_count;
    if (stall_started_s_ < 0.0) {
      stall_started_s_ = sim_.now().to_seconds();
      phase_span_.close("stalled");
      phase_span_ = obs::open_span(sim_, obs::SpanCategory::kPlayer, "stall",
                                   stats_.stall_count);
    }
    if (ctr_stalls_ != nullptr) ctr_stalls_->inc();
    if (obs::ObsContext* obs = sim_.obs(); obs != nullptr && obs->trace().active()) {
      obs->trace().emit(obs::PlayerStall{sim_.now().to_seconds(), stats_.stall_count});
    }
    playing_ = false;  // re-enter via the startup threshold
    return;
  }

  const std::uint64_t eat = std::min(want_bytes, have);
  stats_.consumed_bytes += eat;
  stats_.watched_s += static_cast<double>(eat) * 8.0 / config_.encoding_bps;
  // The playback buffer is downloaded - consumed; consuming more than was
  // downloaded would make it (conceptually) negative.
  VSTREAM_INVARIANT(stats_.consumed_bytes <= stats_.downloaded_bytes,
                    "player consumed bytes it never downloaded — buffer went negative");
  VSTREAM_INVARIANT(stats_.watched_s <= config_.duration_s + config_.tick.to_seconds(),
                    "player watched past the end of the video");

  if (config_.watch_fraction.has_value() &&
      stats_.watched_s >= *config_.watch_fraction * config_.duration_s) {
    interrupt();
    return;
  }
  if (stats_.watched_s >= config_.duration_s - 1e-9) {
    done_ = true;
    playing_ = false;
    clock_.stop();
    stats_.finished = true;
    phase_span_.close("finished");
    if (on_finished_) on_finished_();
  }
}

}  // namespace vstream::streaming
