// Video player model: playback buffer, startup threshold, stalls, and user
// interruption due to lack of interest (Sections 2, 5.3, 6.2).
//
// The player is fed downloaded bytes by the streaming client and consumes
// them at the encoding rate once playback starts. It tracks everything the
// paper's discussion needs: buffer occupancy over time, stalls (empty
// buffer), and — when the viewer abandons the video after watching a
// fraction beta — the bytes downloaded but never watched ("unused bytes").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "obs/span.hpp"
#include "sim/periodic_timer.hpp"
#include "sim/simulator.hpp"

namespace vstream::obs {
class Counter;
}

namespace vstream::streaming {

struct PlayerConfig {
  double encoding_bps{1e6};
  double duration_s{180.0};
  /// Seconds of content required in the buffer before playback starts.
  double start_threshold_s{2.0};
  /// Fraction of the video after which the viewer loses interest and
  /// interrupts (beta in the paper's model); absent = watch to the end.
  std::optional<double> watch_fraction;
  /// Granularity of the playback clock.
  sim::Duration tick{sim::Duration::millis(100)};
};

struct PlayerStats {
  bool started{false};
  double start_time_s{0.0};       ///< when playback began
  double watched_s{0.0};          ///< content seconds actually played
  std::uint64_t downloaded_bytes{0};
  std::uint64_t consumed_bytes{0};
  std::uint32_t stall_count{0};
  double stall_time_s{0.0};
  /// Stalls playback actually recovered from (resumed after the buffer
  /// refilled) — the paper-facing rebuffer count under fault injection.
  std::uint32_t rebuffer_count{0};
  double longest_stall_s{0.0};  ///< longest single recovered stall episode
  std::uint64_t max_buffered_bytes{0};  ///< peak playback-buffer occupancy
  bool interrupted{false};
  double interrupted_at_s{0.0};   ///< wall-clock time of the interruption
  bool finished{false};

  /// Bytes downloaded but never played (the paper's "unused bytes").
  [[nodiscard]] std::uint64_t unused_bytes() const {
    return downloaded_bytes > consumed_bytes ? downloaded_bytes - consumed_bytes : 0;
  }
  /// Current playback buffer, in bytes.
  [[nodiscard]] std::uint64_t buffered_bytes() const { return unused_bytes(); }
};

class Player {
 public:
  Player(sim::Simulator& sim, PlayerConfig config);

  /// Feed freshly downloaded video bytes (client calls this on every read).
  void on_bytes_downloaded(std::uint64_t bytes);

  /// Viewer abandons the session now (also triggered internally when
  /// `watch_fraction` of the content has been played).
  void interrupt();

  /// Fired once when the viewer interrupts (lack of interest) — the session
  /// uses it to stop the download.
  void set_on_interrupt(std::function<void()> cb) { on_interrupt_ = std::move(cb); }
  /// Fired once when the whole video has been played out.
  void set_on_finished(std::function<void()> cb) { on_finished_ = std::move(cb); }

  [[nodiscard]] const PlayerStats& stats() const { return stats_; }
  [[nodiscard]] bool playing() const { return playing_; }
  [[nodiscard]] double buffered_playback_s() const;
  [[nodiscard]] const PlayerConfig& config() const { return config_; }

 private:
  void tick();
  void maybe_start();

  sim::Simulator& sim_;
  PlayerConfig config_;
  sim::PeriodicTimer clock_;
  PlayerStats stats_;
  bool playing_{false};
  bool done_{false};
  double stall_started_s_{-1.0};  ///< sim time the current stall began; <0 = none
  /// Current playback phase as an episode span: "buffering" → "steady" ⇄
  /// "stall"; closed with the transition that ended the phase.
  obs::Span phase_span_;
  obs::Counter* ctr_stalls_{nullptr};
  obs::Counter* ctr_interrupts_{nullptr};
  obs::Counter* ctr_rebuffers_{nullptr};
  std::function<void()> on_interrupt_;
  std::function<void()> on_finished_;
};

}  // namespace vstream::streaming
