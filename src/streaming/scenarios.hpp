// Canonical scenario catalog: one named SessionConfig per (service,
// container, application) combination the paper's Table 1 supports, across
// representative vantage networks. The examples exercise these shapes ad
// hoc; the determinism audit (`tools/determinism_audit`) and the
// determinism tests run every one of them twice with the same seed and
// require bit-identical state digests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "streaming/session.hpp"

namespace vstream::obs {
class TraceSink;
}

namespace vstream::streaming {

struct NamedScenario {
  std::string name;
  SessionConfig config;
};

/// Every supported Table-1 combination, each on a representative vantage,
/// plus interruption and idle-restart variants. `capture_duration_s` scales
/// every scenario's capture window (the paper used 180 s; tests use less).
[[nodiscard]] std::vector<NamedScenario> canonical_scenarios(double capture_duration_s = 180.0);

/// Fault-injection catalog (net/dynamics.hpp): sessions that hit blackouts,
/// burst-loss windows, rate halvings, and link flaps mid-stream, with the
/// retry/rebuffer machinery enabled. Kept separate from the canonical
/// catalog because these sessions carry non-zero ResilienceStats, which the
/// packet-only batch path cannot derive on its own. Fault windows are
/// positioned relative to `capture_duration_s` so the faults always land
/// mid-capture, whatever the window; the determinism audit runs these
/// twin-run, same as the canonical set.
[[nodiscard]] std::vector<NamedScenario> fault_scenarios(double capture_duration_s = 180.0);

/// The determinism fingerprint of one scenario run: the simulator digest
/// (event order + TCP state snapshots) with the run's headline results
/// folded in, so divergence in either the event schedule or the outcome
/// flips the value.
struct RunFingerprint {
  std::uint64_t digest{0};
  std::uint64_t words_mixed{0};
  std::uint64_t sim_events{0};
  std::uint64_t bytes_downloaded{0};

  friend bool operator==(const RunFingerprint&, const RunFingerprint&) = default;
};

/// Fold a session's headline outcome (bytes, events, connections, player
/// progress, recovery dynamics) into `digest`, after the run. This is the
/// result half of fingerprint_session, shared with the streamed-sweep
/// digest (runner/session_sweep.hpp) so both fingerprint a session the same
/// way: a divergence the event-order stream somehow missed still flips it.
void fold_outcome(check::StateDigest& digest, const SessionResult& result);

/// Run one scenario with a digest attached and fingerprint the result.
/// `sink`, when given, is attached to the run's trace bus — which arms the
/// span layer and every probe. Tracing is digest-neutral by contract, so a
/// fingerprint must not change between an unobserved and an armed run; the
/// determinism audit runs its second twin armed to enforce exactly that.
[[nodiscard]] RunFingerprint fingerprint_session(const SessionConfig& config,
                                                 obs::TraceSink* sink = nullptr);

}  // namespace vstream::streaming
