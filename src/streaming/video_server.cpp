#include "streaming/video_server.hpp"

#include <algorithm>

#include "check/contracts.hpp"
#include "obs/context.hpp"
#include "tcp/endpoint.hpp"

namespace vstream::streaming {

VideoStreamServer::VideoStreamServer(sim::Simulator& sim, tcp::Endpoint& endpoint,
                                     video::VideoMeta video, ServerPacing pacing)
    : sim_{sim}, conn_id_{endpoint.connection_id()}, video_{std::move(video)}, pacing_{pacing} {
  if (pacing_.mode == ServerPacing::Mode::kPacedBlocks) {
    VSTREAM_PRECONDITION(pacing_.block_bytes > 0, "paced discipline needs a positive block size");
    VSTREAM_PRECONDITION(pacing_.accumulation_ratio > 0.0,
                         "paced discipline needs a positive accumulation ratio");
    VSTREAM_PRECONDITION(pacing_.initial_burst_playback_s >= 0.0,
                         "initial burst length cannot be negative");
  }
  http_ = std::make_unique<http::HttpServer>(
      endpoint, [this](const http::HttpRequest& req, const http::HttpServer::MakeResponder& make) {
        handle(req, make);
      });
}

void VideoStreamServer::stop() {
  for (auto& p : pacers_) p->stop();
}

void VideoStreamServer::probe_block(std::uint64_t bytes, bool initial_burst) {
  obs::ObsContext* obs = sim_.obs();
  if (obs == nullptr) return;
  obs->metrics().counter(initial_burst ? "server.initial_bursts" : "server.paced_blocks").inc();
  if (!initial_burst) {
    obs->metrics()
        .histogram("server.block_bytes",
                   {16.0 * 1024, 64.0 * 1024, 256.0 * 1024, 1024.0 * 1024, 2.5 * 1024 * 1024,
                    8.0 * 1024 * 1024})
        .observe(static_cast<double>(bytes));
  }
  if (obs->trace().active()) {
    obs::PacingBlockEmitted e;
    e.t_s = sim_.now().to_seconds();
    e.connection_id = conn_id_;
    e.bytes = bytes;
    e.initial_burst = initial_burst;
    obs->trace().emit(e);
  }
}

void VideoStreamServer::handle(const http::HttpRequest& request,
                               const http::HttpServer::MakeResponder& make) {
  const std::uint64_t full_size = video_.size_bytes();

  std::uint64_t body = full_size;
  http::HttpResponse head;
  head.status = 200;
  head.headers["Content-Type"] =
      video_.container == video::Container::kHtml5 ? "video/webm" : "video/x-flv";

  if (request.range.has_value()) {
    auto range = *request.range;
    range.end = std::min<std::uint64_t>(range.end, full_size == 0 ? 0 : full_size - 1);
    if (range.start > range.end) {
      auto responder = make(0);
      head.status = 416;
      head.content_length = 0;
      responder->send_head(head);
      return;
    }
    body = range.length();
    head.status = 206;
    head.content_range = range;
  }
  head.content_length = body;

  auto responder = make(body);
  responder->send_head(head);
  active_.push_back(responder);

  if (pacing_.mode == ServerPacing::Mode::kBulk) {
    responder->send_body(body);
    return;
  }

  // Paced discipline: initial burst, then one block per cycle.
  const auto burst = static_cast<std::uint64_t>(pacing_.initial_burst_playback_s *
                                                video_.encoding_bps / 8.0);
  responder->send_body(std::min(burst, body));
  probe_block(std::min(burst, body), /*initial_burst=*/true);
  if (responder->body_remaining() == 0) return;

  const double steady_rate_bps = pacing_.accumulation_ratio * video_.encoding_bps;
  const double cycle_s = static_cast<double>(pacing_.block_bytes) * 8.0 / steady_rate_bps;
  VSTREAM_INVARIANT(cycle_s > 0.0, "pacing cycle must be a positive interval");
  auto self = std::make_shared<sim::PeriodicTimer*>(nullptr);
  auto pacer = std::make_unique<sim::PeriodicTimer>(
      sim_, sim::Duration::seconds(cycle_s), [this, responder, self] {
        responder->send_body(pacing_.block_bytes);
        probe_block(pacing_.block_bytes, /*initial_burst=*/false);
        if (responder->body_remaining() == 0 && *self != nullptr) (*self)->stop();
      });
  *self = pacer.get();
  pacer->start();
  pacers_.push_back(std::move(pacer));
}

}  // namespace vstream::streaming
