// Streaming-session orchestration: the executable form of Table 1.
//
// `run_session` builds a simulated world (vantage network, TCP fabric,
// viewer-side capture), instantiates the server pacing discipline and the
// client read policy that the paper observed for the requested
// (service, container, application) combination, streams one video for the
// capture duration (180 s in the paper), and returns the packet trace plus
// player/transfer statistics. The analysis layer then treats the trace
// exactly as the paper treated its tcpdump captures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/report.hpp"
#include "capture/trace_view.hpp"
#include "net/dynamics.hpp"
#include "net/profile.hpp"
#include "obs/metrics.hpp"
#include "streaming/player.hpp"
#include "streaming/retry.hpp"
#include "video/metadata.hpp"

namespace vstream::check {
class StateDigest;
}

namespace vstream::sim {
class ArenaResource;
}

namespace vstream::obs {
class TraceSink;
}

namespace vstream::streaming {

enum class Service : std::uint8_t { kYouTube, kNetflix };

enum class Application : std::uint8_t {
  kInternetExplorer,
  kFirefox,
  kChrome,
  kIosNative,
  kAndroidNative,
};

[[nodiscard]] std::string to_string(Service s);
[[nodiscard]] std::string to_string(Application a);

/// True when the paper's Table 1 has an entry for this combination (e.g.
/// Flash on native mobile apps is "Not Applicable").
[[nodiscard]] bool combination_supported(Service service, video::Container container,
                                         Application application);

struct SessionConfig {
  Service service{Service::kYouTube};
  video::Container container{video::Container::kFlash};
  Application application{Application::kInternetExplorer};
  net::NetworkProfile network;
  video::VideoMeta video;
  double capture_duration_s{180.0};  ///< the paper stops capture after 180 s
  /// Viewer interruption: fraction of the video watched before abandoning
  /// (beta in Section 6.2); absent = never interrupt.
  std::optional<double> watch_fraction;
  std::uint64_t seed{1};
  /// Ablation knob for the Fig 9 discussion: make the streaming server obey
  /// RFC 5681's idle congestion-window restart (real CDNs did not).
  bool server_idle_cwnd_reset{false};
  /// Cross-traffic model: the session's available bandwidth is the profile
  /// rate scaled by U[1-jitter, 1]. The paper's vantage links were shared
  /// (500 Mbps / 1 Gbps uplinks), so per-session available bandwidth varied
  /// substantially — this is what makes the bulk download rate of Fig 8
  /// uncorrelated with the encoding rate.
  double bandwidth_jitter{0.5};
  /// Generate the auxiliary traffic of a real session (related-video
  /// thumbnails, an advertisement, analytics beacons) on non-video hosts.
  /// The analysis then has to filter to the video connections, as the
  /// paper's methodology did (§2).
  bool auxiliary_traffic{true};
  /// Optional trace sink attached to the session's ObsContext for the whole
  /// run (typed probe events: cwnd samples, paced blocks, stalls, ...).
  /// Non-owning; must outlive run_session.
  obs::TraceSink* trace_sink{nullptr};
  /// Optional determinism-audit digest attached to the session's simulator:
  /// event dispatch order and TCP state snapshots fold into it, so two runs
  /// with identical config must leave identical digests. Non-owning.
  check::StateDigest* digest{nullptr};
  /// Optional per-world allocator backing the simulator's event queue, slot
  /// pool and free list (sim/arena.hpp). Sweep workers pass their own
  /// recycled arena so million-session runs never contend on the global
  /// allocator; null runs on the global allocator, bit-identically.
  /// Non-owning; must outlive run_session, and — being single-threaded —
  /// must never be shared by two concurrently running sessions.
  sim::ArenaResource* arena{nullptr};
  /// Keep the auxiliary-host traffic in `SessionResult::trace`. By default
  /// the result holds only the video-CDN packets (the paper's §2 filter,
  /// applied in place) — one owned trace instead of the seed's two.
  bool keep_full_trace{false};
  /// Store captured packets at all. With false the result's trace stays
  /// empty and memory stays constant in capture length — pair it with
  /// `streaming_report` for sweeps that only need the analysis output.
  bool store_trace{true};
  /// Run the single-pass analysis pipeline during capture and attach its
  /// `SessionReport` (field-identical to the batch `build_report` over the
  /// video trace) to the result.
  bool streaming_report{false};
  /// Fault injection: deterministic impairment windows applied to the
  /// downstream access link (rate scaling, delay spikes, burst loss,
  /// blackouts / link flaps). Empty = the usual fault-free run.
  net::ImpairmentSchedule impairments;
  /// Application-level recovery for the fetch-based clients: no-progress
  /// request timeout, bounded exponential backoff, TCP re-establishment.
  RetryPolicy fetch_retry;
  /// Extension: let the Netflix client adapt its encoding rate mid-stream
  /// (per-block throughput + fault downswitch) instead of the paper's fixed
  /// selection.
  bool adaptive_bitrate{false};
  /// Topology-attach mode: the session runs inside a shared multi-session
  /// world (streaming/topology.hpp) instead of owning a private path.
  /// `validate()` then rejects the private-path-only machinery — bandwidth
  /// jitter (the shared bottleneck replaces that stand-in), per-session
  /// capture/reports, and per-session world attachments (trace sink,
  /// digest, arena) — with diagnostics pointing at the topology-level
  /// equivalent. `run_session` refuses such configs; `run_topology` sets
  /// the flag on its session template. `capture_duration_s` is ignored in
  /// this mode (the topology horizon governs the world).
  bool topology_attached{false};

  /// Reject impossible configurations up front (negative durations, watch
  /// fractions outside (0,1], invalid retry/impairment parameters, Table 1
  /// combinations the paper marks "Not Applicable"). `run_session` calls
  /// this; `SessionBuilder::build()` calls it at construction time.
  void validate() const;
};

struct SessionResult {
  /// The one owned capture of the session. By default it holds the
  /// video-CDN traffic only (the paper's §2 filter applied in place); with
  /// `SessionConfig::keep_full_trace` it holds everything the viewer-side
  /// capture saw, auxiliary hosts included, and `video_trace()` does the
  /// filtering lazily. Empty when `store_trace` is false.
  capture::PacketTrace trace;
  /// Whether `trace` still contains the auxiliary-host packets.
  bool has_full_trace{false};
  /// The video-CDN packets as a zero-copy view — what the analysis layer
  /// consumes. Valid only while this result (and its `trace`) is alive.
  [[nodiscard]] capture::TraceView video_trace() const {
    return capture::TraceView{trace}.host(0);
  }
  /// Single-pass analysis output, when `SessionConfig::streaming_report`
  /// was set. Present even with `store_trace == false`.
  std::optional<analysis::SessionReport> report;
  PlayerStats player;
  std::uint64_t bytes_downloaded{0};   ///< application bytes read by the client
  std::size_t connections{0};          ///< TCP connections used for video
  double encoding_bps_true{0.0};       ///< ground truth (or selected Netflix rate)
  double encoding_bps_estimated{0.0};  ///< what the paper's pipeline would infer
  double interrupted_at_s{0.0};        ///< 0 when not interrupted
  /// Fault/recovery accounting for the run (all-zero when fault-free):
  /// retries and timeouts from the fetch layer, rebuffers from the player,
  /// blackout drops and window counts from the impaired link. Mirror it
  /// into `analysis::ReportOptions::resilience` when batch-building a
  /// report for this session.
  analysis::ResilienceStats resilience;
  /// Snapshot of the session's metrics registry at the end of the run.
  obs::MetricsSnapshot metrics;
  std::uint64_t sim_events{0};            ///< discrete events the simulator ran
  std::size_t sim_max_events_pending{0};  ///< event-queue high-water mark
};

[[nodiscard]] SessionResult run_session(const SessionConfig& config);

}  // namespace vstream::streaming
