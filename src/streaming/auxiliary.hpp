// Auxiliary (non-video) session traffic.
//
// "During a typical streaming session, apart from the video content, the
// streaming servers send other auxiliary data. For example, ... details of
// related videos and advertisements. We restrict ourselves to the TCP
// connections that are used to transfer the video content." (Section 2.)
//
// This module generates that surrounding traffic — page assets, thumbnails,
// an advertisement, and periodic analytics beacons — on connections tagged
// with a non-video host, so the analysis pipeline has to perform the same
// filtering step the paper's did.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "http/exchange.hpp"
#include "sim/periodic_timer.hpp"
#include "sim/rng.hpp"
#include "tcp/connection.hpp"

namespace vstream::streaming {

class AuxiliaryTraffic {
 public:
  struct Config {
    std::uint8_t host{1};            ///< server tag for the aux connections
    std::uint32_t asset_count_min{2};
    std::uint32_t asset_count_max{4};
    std::uint64_t asset_bytes_min{20 * 1024};
    std::uint64_t asset_bytes_max{300 * 1024};
    double start_spread_s{2.0};      ///< assets start within [0, spread)
    /// Analytics beacon: small request/response every period; 0 disables.
    double beacon_period_s{30.0};
    std::uint64_t beacon_bytes{2 * 1024};
  };

  AuxiliaryTraffic(sim::Simulator& sim, tcp::Fabric& fabric, Config config, sim::Rng rng);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t bytes_fetched() const { return bytes_; }
  [[nodiscard]] std::size_t connections_opened() const { return connections_; }

 private:
  void open_asset(std::uint64_t bytes, double delay_s);
  void open_beacon_channel();

  sim::Simulator& sim_;
  tcp::Fabric& fabric_;
  Config config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<http::HttpServer>> servers_;
  std::unique_ptr<sim::PeriodicTimer> beacon_timer_;
  tcp::Connection* beacon_conn_{nullptr};
  std::uint64_t bytes_{0};
  std::size_t connections_{0};
  bool stopped_{false};
};

}  // namespace vstream::streaming
