#include "streaming/session.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "analysis/streaming_report.hpp"
#include "capture/recorder.hpp"
#include "check/digest.hpp"
#include "http/exchange.hpp"
#include "net/path.hpp"
#include "net/path_builder.hpp"
#include "obs/context.hpp"
#include "streaming/auxiliary.hpp"
#include "streaming/clients.hpp"
#include "streaming/fetch.hpp"
#include "streaming/ipad_client.hpp"
#include "streaming/netflix_client.hpp"
#include "streaming/video_server.hpp"
#include "tcp/connection.hpp"
#include "video/container_header.hpp"

namespace vstream::streaming {

using video::Container;

std::string to_string(Service s) {
  return s == Service::kYouTube ? "YouTube" : "Netflix";
}

std::string to_string(Application a) {
  switch (a) {
    case Application::kInternetExplorer:
      return "IE";
    case Application::kFirefox:
      return "Firefox";
    case Application::kChrome:
      return "Chrome";
    case Application::kIosNative:
      return "iOS";
    case Application::kAndroidNative:
      return "Android";
  }
  return "?";
}

bool combination_supported(Service service, Container container, Application application) {
  const bool mobile =
      application == Application::kIosNative || application == Application::kAndroidNative;
  if (service == Service::kNetflix) {
    // Netflix is Silverlight on PCs and the native app on mobiles.
    return container == Container::kSilverlight;
  }
  switch (container) {
    case Container::kFlash:
    case Container::kFlashHd:
      return !mobile;  // Table 1: "Not Applicable" for native mobile apps
    case Container::kHtml5:
      return true;
    case Container::kSilverlight:
      return false;
  }
  return false;
}

namespace {

net::NetworkProfile jittered(const SessionConfig& cfg, sim::Rng& rng) {
  auto profile = cfg.network;
  if (cfg.bandwidth_jitter > 0.0) {
    const double lo = std::clamp(1.0 - cfg.bandwidth_jitter, 0.05, 1.0);
    const double scale = rng.fork("bandwidth").uniform(lo, 1.0);
    profile.down_bps *= scale;
    profile.up_bps *= scale;
  }
  return profile;
}

struct World {
  explicit World(const SessionConfig& cfg)
      : sim{cfg.arena},
        rng{cfg.seed},
        obs_wired{(sim.set_obs(&obs), true)},
        path{net::PathBuilder{sim, jittered(cfg, rng), rng}
                 .impairments(cfg.impairments)
                 .build()},
        fabric{sim, *path},
        recorder{sim, *path} {
    recorder.start();
  }

  sim::Simulator sim;
  sim::Rng rng;
  // The context must be attached to the simulator before any instrumented
  // component (links, endpoints, players) constructs — they cache registry
  // pointers in their constructors.
  obs::ObsContext obs;
  bool obs_wired;
  std::unique_ptr<net::Path> path;
  tcp::Fabric fabric;
  capture::TraceRecorder recorder;
};

tcp::TcpOptions client_options_with_buffer(std::uint64_t recv_bytes) {
  tcp::TcpOptions o;
  o.recv_buffer_bytes = recv_bytes;
  return o;
}

/// Deferred player wiring: clients need a sink before the player exists in
/// some flows (Netflix selects its rate first).
struct PlayerCell {
  Player* player{nullptr};
  [[nodiscard]] ByteSink sink() {
    return [this](std::uint64_t n) {
      if (player != nullptr) player->on_bytes_downloaded(n);
    };
  }
};

}  // namespace

void SessionConfig::validate() const {
  if (!combination_supported(service, container, application)) {
    throw std::invalid_argument{"SessionConfig: combination not applicable (Table 1)"};
  }
  if (video.encoding_bps <= 0.0 || video.duration_s <= 0.0) {
    throw std::invalid_argument{"SessionConfig: invalid video metadata"};
  }
  if (capture_duration_s <= 0.0) {
    throw std::invalid_argument{"SessionConfig: capture duration must be positive"};
  }
  if (watch_fraction.has_value() && (*watch_fraction <= 0.0 || *watch_fraction > 1.0)) {
    throw std::invalid_argument{"SessionConfig: watch fraction outside (0,1]"};
  }
  if (bandwidth_jitter < 0.0) {
    throw std::invalid_argument{"SessionConfig: bandwidth jitter must be non-negative"};
  }
  fetch_retry.validate();
  impairments.validate();
}

SessionResult run_session(const SessionConfig& cfg) {
  cfg.validate();

  World w{cfg};
  if (cfg.trace_sink != nullptr) w.obs.trace().attach(cfg.trace_sink);
  if (cfg.digest != nullptr) w.sim.set_digest(cfg.digest);

  // Capture plumbing: size the trace for the expected capture up front
  // (un-jittered profile rate as the upper bound), optionally stream every
  // video-host record through the single-pass analysis pipeline, and skip
  // storing entirely when the caller only wants the streamed report.
  w.recorder.set_store_packets(cfg.store_trace);
  w.recorder.reserve_for(cfg.capture_duration_s, cfg.network.down_bps);
  std::unique_ptr<analysis::StreamingReportBuilder> live_report;
  if (cfg.streaming_report) {
    live_report = std::make_unique<analysis::StreamingReportBuilder>();
    w.recorder.set_record_sink([&live = *live_report](const capture::PacketRecord& r) {
      if (r.host == 0) live.add(r);  // the §2 video-host filter, streamed
    });
  }
  obs::SimLoopMonitor loop_monitor{w.sim, sim::Duration::seconds(1.0)};
  loop_monitor.start();
  sim::Rng knob_rng = w.rng.fork("session-knobs");
  PlayerCell cell;

  // Objects created per combination; all owned here so they outlive the run.
  std::unique_ptr<VideoStreamServer> server;
  std::unique_ptr<GreedyClient> greedy;
  std::unique_ptr<PullThrottleClient> pull;
  std::unique_ptr<FetchManager> fetches;
  std::unique_ptr<IpadYouTubeClient> ipad;
  std::unique_ptr<NetflixClient> netflix;
  std::unique_ptr<AuxiliaryTraffic> auxiliary;
  tcp::Connection* conn = nullptr;

  if (cfg.auxiliary_traffic) {
    auxiliary = std::make_unique<AuxiliaryTraffic>(w.sim, w.fabric, AuxiliaryTraffic::Config{},
                                                   w.rng.fork("auxiliary"));
    auxiliary->start();
  }

  double player_rate_bps = cfg.video.encoding_bps;
  const auto mb = [](double x) { return static_cast<std::uint64_t>(x * 1024 * 1024); };

  const auto open_single_connection = [&](std::uint64_t client_recv_bytes,
                                          ServerPacing pacing) {
    tcp::TcpOptions server_tcp;
    server_tcp.reset_cwnd_after_idle = cfg.server_idle_cwnd_reset;
    conn = &w.fabric.create_connection(client_options_with_buffer(client_recv_bytes), server_tcp);
    server = std::make_unique<VideoStreamServer>(w.sim, conn->server(), cfg.video, pacing);
    tcp::Connection* c = conn;
    const std::string id = cfg.video.id;
    conn->client().set_on_established([c, id] {
      http::HttpClient http{c->client()};
      http.send_request(http::make_video_request(id));
    });
  };

  if (cfg.service == Service::kYouTube) {
    switch (cfg.container) {
      case Container::kFlash: {
        // Server-paced push: ~40 s burst, 64 kB blocks, ratio 1.25.
        auto pacing = ServerPacing::youtube_flash();
        pacing.initial_burst_playback_s = 40.0 * knob_rng.uniform(0.85, 1.15);
        open_single_connection(512 * 1024, pacing);
        greedy = std::make_unique<GreedyClient>(conn->client(), cell.sink());
        conn->open();
        break;
      }
      case Container::kFlashHd: {
        // Bulk transfer: nobody throttles HD Flash (Fig 8).
        open_single_connection(512 * 1024, ServerPacing::bulk());
        greedy = std::make_unique<GreedyClient>(conn->client(), cell.sink());
        conn->open();
        break;
      }
      case Container::kHtml5: {
        if (cfg.application == Application::kFirefox) {
          // Firefox HTML5: bulk, no throttling anywhere.
          open_single_connection(512 * 1024, ServerPacing::bulk());
          greedy = std::make_unique<GreedyClient>(conn->client(), cell.sink());
          conn->open();
        } else if (cfg.application == Application::kIosNative) {
          // iPad: successive ranged connections, mixed strategy.
          IpadYouTubeClient::Config icfg;
          icfg.initial_buffer_bytes = mb(knob_rng.uniform(8.0, 12.0));
          fetches = std::make_unique<FetchManager>(w.sim, w.fabric, cfg.video,
                                                   client_options_with_buffer(512 * 1024),
                                                   tcp::TcpOptions{}, cfg.fetch_retry);
          ipad = std::make_unique<IpadYouTubeClient>(w.sim, *fetches, cfg.video, icfg,
                                                     cell.sink());
          ipad->start();
        } else {
          // IE / Chrome / Android app: bulk server, client pull throttling.
          PullThrottleClient::Config pcfg;
          pcfg.encoding_bps = cfg.video.encoding_bps;
          std::uint64_t recv_buffer = 0;
          if (cfg.application == Application::kInternetExplorer) {
            pcfg.buffering_target_bytes = mb(knob_rng.uniform(10.0, 15.0));
            pcfg.pull_quantum_bytes = 256 * 1024;
            pcfg.accumulation_ratio = 1.06;
            recv_buffer = 256 * 1024;
          } else if (cfg.application == Application::kChrome) {
            pcfg.buffering_target_bytes = mb(knob_rng.uniform(10.0, 15.0));
            pcfg.pull_quantum_bytes = mb(knob_rng.uniform(4.0, 10.0));
            pcfg.accumulation_ratio = 1.34;
            recv_buffer = 512 * 1024;
          } else {  // Android native YouTube app
            pcfg.buffering_target_bytes = mb(knob_rng.uniform(4.0, 8.0));
            pcfg.pull_quantum_bytes = mb(knob_rng.uniform(2.8, 6.0));
            pcfg.accumulation_ratio = 1.24;
            recv_buffer = 512 * 1024;
          }
          open_single_connection(recv_buffer, ServerPacing::bulk());
          pull = std::make_unique<PullThrottleClient>(w.sim, conn->client(), pcfg, cell.sink());
          conn->open();
        }
        break;
      }
      case Container::kSilverlight:
        throw std::logic_error{"run_session: unreachable (YouTube/Silverlight)"};
    }
  } else {
    // Netflix: Silverlight on PCs, native app on mobiles.
    NetflixClient::Profile profile = NetflixClient::Profile::pc();
    tcp::TcpOptions server_opts;
    if (cfg.application == Application::kIosNative) {
      profile = NetflixClient::Profile::ipad();
    } else if (cfg.application == Application::kAndroidNative) {
      profile = NetflixClient::Profile::android();
      // The long idle OFF periods of the Android app exceed the server RTO;
      // the CDN's RFC 5681 idle restart shows as an ack clock (Fig 9/§5.2.2).
      server_opts.reset_cwnd_after_idle = true;
    }
    profile.adaptive = cfg.adaptive_bitrate;
    fetches = std::make_unique<FetchManager>(w.sim, w.fabric, cfg.video,
                                             client_options_with_buffer(512 * 1024), server_opts,
                                             cfg.fetch_retry);
    netflix = std::make_unique<NetflixClient>(w.sim, *fetches, cfg.video, profile,
                                              cfg.network.down_bps, cell.sink());
    // Bitrate downswitch on transport faults: a timed-out request is
    // stronger evidence of congestion than any throughput sample.
    NetflixClient* nf = netflix.get();
    fetches->set_on_retry([nf](std::uint32_t attempt) { nf->on_fetch_retry(attempt); });
    player_rate_bps = netflix->selected_rate_bps();
    netflix->start();
  }

  // Player: consumes at the (selected) encoding rate, may interrupt.
  PlayerConfig player_cfg;
  player_cfg.encoding_bps = player_rate_bps;
  player_cfg.duration_s = cfg.video.duration_s;
  player_cfg.watch_fraction = cfg.watch_fraction;
  Player player{w.sim, player_cfg};
  cell.player = &player;
  player.set_on_interrupt([&] {
    if (server) server->stop();
    if (greedy) greedy->stop();
    if (pull) pull->stop();
    if (ipad) ipad->stop();
    if (netflix) netflix->stop();
    if (fetches) fetches->stop();
  });

  w.sim.run_until(sim::SimTime::from_seconds(cfg.capture_duration_s));

  loop_monitor.stop();
  if (auxiliary) auxiliary->stop();

  // Flush episode spans truncated by the capture cutoff while their owners
  // are still alive; outstanding RAII handles become inert, so component
  // destruction below cannot double-emit. The count is the teardown
  // unclosed-span detector.
  if (w.obs.trace().active()) {
    const std::size_t truncated = w.obs.spans().close_all("capture_end");
    w.obs.metrics().gauge("obs.spans_truncated").set(static_cast<double>(truncated));
  }

  // Fault/recovery accounting, gathered from every layer that participated:
  // the fetch retry machinery, the player's rebuffer tracking, and the
  // impaired downstream link.
  analysis::ResilienceStats resilience;
  if (fetches) {
    resilience.fetch_retries = fetches->retries();
    resilience.fetch_timeouts = fetches->timeouts();
    resilience.fetch_abandoned = fetches->abandoned();
  }
  resilience.rebuffer_count = player.stats().rebuffer_count;
  resilience.stall_count = player.stats().stall_count;
  resilience.stall_time_s = player.stats().stall_time_s;
  resilience.longest_stall_s = player.stats().longest_stall_s;
  resilience.fault_drops = w.path->down().counters().dropped_fault;
  resilience.fault_windows = w.path->down().counters().fault_windows;
  if (netflix) resilience.rate_switches = netflix->rate_switches();

  // Assemble the result the way the paper's pipeline would see it: the
  // capture, then the filter to the video CDN's connections (Section 2) —
  // applied in place, so the session holds one trace, not two copies.
  SessionResult result;
  result.trace = w.recorder.take();
  result.trace.label = to_string(cfg.service) + "/" + video::to_string(cfg.container) + "/" +
                       to_string(cfg.application) + " @ " + cfg.network.name;
  result.trace.duration_s = cfg.capture_duration_s;
  if (cfg.keep_full_trace) {
    result.has_full_trace = true;
  } else {
    std::erase_if(result.trace.packets,
                  [](const capture::PacketRecord& p) { return p.host != 0; });
  }

  result.encoding_bps_true = player_rate_bps;
  const auto header = video::make_header(cfg.video);
  sim::Rng noise_rng = w.rng.fork("rate-estimate");
  const double noise = noise_rng.lognormal(0.0, 0.15);
  result.encoding_bps_estimated =
      cfg.service == Service::kNetflix
          ? player_rate_bps
          : video::resolve_encoding_rate(header, cfg.video.size_bytes(), noise);
  result.trace.encoding_bps = result.encoding_bps_estimated;

  if (live_report) {
    // Mirror the metadata the batch path reads off the video trace, then
    // close out the single-pass report.
    live_report->set_label(result.trace.label);
    live_report->set_duration_s(cfg.capture_duration_s);
    live_report->set_encoding_bps(result.encoding_bps_estimated);
    live_report->set_resilience(resilience);
    result.report = live_report->finish();
    w.recorder.set_record_sink({});
  }

  result.player = player.stats();
  result.resilience = resilience;
  result.interrupted_at_s = result.player.interrupted ? result.player.interrupted_at_s : 0.0;
  if (greedy) result.bytes_downloaded = greedy->bytes_read();
  if (pull) result.bytes_downloaded = pull->bytes_read();
  if (ipad) result.bytes_downloaded = ipad->bytes_fetched();
  if (netflix) result.bytes_downloaded = netflix->bytes_fetched();
  result.connections = cfg.store_trace ? result.video_trace().connection_count()
                                       : (result.report ? result.report->connections : 0);
  result.metrics = w.obs.metrics().snapshot();
  result.sim_events = w.sim.events_processed();
  result.sim_max_events_pending = w.sim.max_events_pending();
  if (cfg.trace_sink != nullptr) w.obs.trace().detach(cfg.trace_sink);
  return result;
}

}  // namespace vstream::streaming
