#include "streaming/session.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "analysis/streaming_report.hpp"
#include "capture/recorder.hpp"
#include "check/digest.hpp"
#include "net/path.hpp"
#include "net/path_builder.hpp"
#include "obs/context.hpp"
#include "streaming/session_instance.hpp"
#include "tcp/connection.hpp"

namespace vstream::streaming {

using video::Container;

std::string to_string(Service s) {
  return s == Service::kYouTube ? "YouTube" : "Netflix";
}

std::string to_string(Application a) {
  switch (a) {
    case Application::kInternetExplorer:
      return "IE";
    case Application::kFirefox:
      return "Firefox";
    case Application::kChrome:
      return "Chrome";
    case Application::kIosNative:
      return "iOS";
    case Application::kAndroidNative:
      return "Android";
  }
  return "?";
}

bool combination_supported(Service service, Container container, Application application) {
  const bool mobile =
      application == Application::kIosNative || application == Application::kAndroidNative;
  if (service == Service::kNetflix) {
    // Netflix is Silverlight on PCs and the native app on mobiles.
    return container == Container::kSilverlight;
  }
  switch (container) {
    case Container::kFlash:
    case Container::kFlashHd:
      return !mobile;  // Table 1: "Not Applicable" for native mobile apps
    case Container::kHtml5:
      return true;
    case Container::kSilverlight:
      return false;
  }
  return false;
}

namespace {

net::NetworkProfile jittered(const SessionConfig& cfg, sim::Rng& rng) {
  auto profile = cfg.network;
  if (cfg.bandwidth_jitter > 0.0) {
    const double lo = std::clamp(1.0 - cfg.bandwidth_jitter, 0.05, 1.0);
    const double scale = rng.fork("bandwidth").uniform(lo, 1.0);
    profile.down_bps *= scale;
    profile.up_bps *= scale;
  }
  return profile;
}

struct World {
  explicit World(const SessionConfig& cfg)
      : sim{cfg.arena},
        rng{cfg.seed},
        obs_wired{(sim.set_obs(&obs), true)},
        path{net::PathBuilder{sim, jittered(cfg, rng), rng}
                 .impairments(cfg.impairments)
                 .build()},
        fabric{sim, *path},
        recorder{sim, *path} {
    recorder.start();
  }

  sim::Simulator sim;
  sim::Rng rng;
  // The context must be attached to the simulator before any instrumented
  // component (links, endpoints, players) constructs — they cache registry
  // pointers in their constructors.
  obs::ObsContext obs;
  bool obs_wired;
  std::unique_ptr<net::Path> path;
  tcp::Fabric fabric;
  capture::TraceRecorder recorder;
};

}  // namespace

void SessionConfig::validate() const {
  if (!combination_supported(service, container, application)) {
    throw std::invalid_argument{"SessionConfig: combination not applicable (Table 1)"};
  }
  if (video.encoding_bps <= 0.0 || video.duration_s <= 0.0) {
    throw std::invalid_argument{"SessionConfig: invalid video metadata"};
  }
  if (capture_duration_s <= 0.0) {
    throw std::invalid_argument{"SessionConfig: capture duration must be positive"};
  }
  if (watch_fraction.has_value() && (*watch_fraction <= 0.0 || *watch_fraction > 1.0)) {
    throw std::invalid_argument{"SessionConfig: watch fraction outside (0,1]"};
  }
  if (bandwidth_jitter < 0.0) {
    throw std::invalid_argument{"SessionConfig: bandwidth jitter must be non-negative"};
  }
  if (topology_attached) {
    if (bandwidth_jitter > 0.0) {
      throw std::invalid_argument{
          "SessionConfig: bandwidth_jitter is the private-path stand-in for shared-link "
          "contention and cannot compose with a topology attachment — the shared bottleneck "
          "produces the contention for real; set bandwidth_jitter(0) on the session template "
          "(TopologyBuilder's default)"};
    }
    if (store_trace || keep_full_trace || streaming_report) {
      throw std::invalid_argument{
          "SessionConfig: per-session capture and report machinery is private-path only — a "
          "topology world samples its shared bottleneck instead of recording per-session "
          "packets; disable store_trace/keep_full_trace/streaming_report on the session "
          "template (TopologyBuilder's default)"};
    }
    if (trace_sink != nullptr || digest != nullptr || arena != nullptr) {
      throw std::invalid_argument{
          "SessionConfig: trace sinks, digests and arenas are per-world attachments — in a "
          "topology they belong on TopologyConfig, not on the session template"};
    }
    if (!impairments.empty()) {
      throw std::invalid_argument{
          "SessionConfig: impairment windows are absolute world times, which a session "
          "arriving mid-run cannot honour — fault the shared link via "
          "TopologyConfig::bottleneck_impairments instead"};
    }
  }
  fetch_retry.validate();
  impairments.validate();
}

SessionResult run_session(const SessionConfig& cfg) {
  cfg.validate();
  if (cfg.topology_attached) {
    throw std::invalid_argument{
        "run_session: config is marked topology_attached — run it through run_topology "
        "(streaming/topology.hpp), which owns the shared world this session expects"};
  }

  World w{cfg};
  if (cfg.trace_sink != nullptr) w.obs.trace().attach(cfg.trace_sink);
  if (cfg.digest != nullptr) w.sim.set_digest(cfg.digest);

  // Capture plumbing: size the trace for the expected capture up front
  // (un-jittered profile rate as the upper bound), optionally stream every
  // video-host record through the single-pass analysis pipeline, and skip
  // storing entirely when the caller only wants the streamed report.
  w.recorder.set_store_packets(cfg.store_trace);
  w.recorder.reserve_for(cfg.capture_duration_s, cfg.network.down_bps);
  std::unique_ptr<analysis::StreamingReportBuilder> live_report;
  if (cfg.streaming_report) {
    live_report = std::make_unique<analysis::StreamingReportBuilder>();
    w.recorder.set_record_sink([&live = *live_report](const capture::PacketRecord& r) {
      if (r.host == 0) live.add(r);  // the §2 video-host filter, streamed
    });
  }
  obs::SimLoopMonitor loop_monitor{w.sim, sim::Duration::seconds(1.0)};
  loop_monitor.start();

  // The instance owns the whole Table-1 application layer: server pacing,
  // client read policy, player, auxiliary traffic. It takes the session
  // stream by value after the world-level bandwidth fork, and forks
  // "session-knobs"/"auxiliary"/"rate-estimate" in the historical order.
  SessionInstance instance{w.sim, w.fabric, cfg, w.rng};

  w.sim.run_until(sim::SimTime::from_seconds(cfg.capture_duration_s));

  loop_monitor.stop();
  instance.stop_auxiliary();

  // Flush episode spans truncated by the capture cutoff while their owners
  // are still alive; outstanding RAII handles become inert, so component
  // destruction below cannot double-emit. The count is the teardown
  // unclosed-span detector.
  if (w.obs.trace().active()) {
    const std::size_t truncated = w.obs.spans().close_all("capture_end");
    w.obs.metrics().gauge("obs.spans_truncated").set(static_cast<double>(truncated));
  }

  SessionOutcome outcome = instance.finalize();

  // Assemble the result the way the paper's pipeline would see it: the
  // capture, then the filter to the video CDN's connections (Section 2) —
  // applied in place, so the session holds one trace, not two copies.
  SessionResult result;
  result.trace = w.recorder.take();
  result.trace.label = to_string(cfg.service) + "/" + video::to_string(cfg.container) + "/" +
                       to_string(cfg.application) + " @ " + cfg.network.name;
  result.trace.duration_s = cfg.capture_duration_s;
  if (cfg.keep_full_trace) {
    result.has_full_trace = true;
  } else {
    std::erase_if(result.trace.packets,
                  [](const capture::PacketRecord& p) { return p.host != 0; });
  }

  result.encoding_bps_true = outcome.encoding_bps_true;
  result.encoding_bps_estimated = outcome.encoding_bps_estimated;
  result.trace.encoding_bps = result.encoding_bps_estimated;

  if (live_report) {
    // Mirror the metadata the batch path reads off the video trace, then
    // close out the single-pass report.
    live_report->set_label(result.trace.label);
    live_report->set_duration_s(cfg.capture_duration_s);
    live_report->set_encoding_bps(result.encoding_bps_estimated);
    live_report->set_resilience(outcome.resilience);
    result.report = live_report->finish();
    w.recorder.set_record_sink({});
  }

  result.player = outcome.player;
  result.resilience = outcome.resilience;
  result.interrupted_at_s = outcome.interrupted_at_s;
  result.bytes_downloaded = outcome.bytes_downloaded;
  result.connections = cfg.store_trace ? result.video_trace().connection_count()
                                       : (result.report ? result.report->connections : 0);
  result.metrics = w.obs.metrics().snapshot();
  result.sim_events = w.sim.events_processed();
  result.sim_max_events_pending = w.sim.max_events_pending();
  if (cfg.trace_sink != nullptr) w.obs.trace().detach(cfg.trace_sink);
  return result;
}

}  // namespace vstream::streaming
