// Range-request fetch machinery over fresh or reused TCP connections.
//
// The iPad YouTube client fetched one video with up to 37 successive TCP
// connections carrying ranged GETs (Section 5.1.3); Netflix used "a large
// number of TCP connections" per session (Section 5.2.2) and showed an ack
// clock exactly when a block rode a fresh connection. `FetchManager` gives
// the clients both modes: a fresh connection per fetch, or a persistent
// connection issuing successive ranged GETs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "http/exchange.hpp"
#include "streaming/clients.hpp"
#include "streaming/video_server.hpp"
#include "tcp/connection.hpp"
#include "video/metadata.hpp"

namespace vstream::streaming {

class FetchManager {
 public:
  FetchManager(sim::Simulator& sim, tcp::Fabric& fabric, video::VideoMeta video,
               tcp::TcpOptions client_options, tcp::TcpOptions server_options);

  /// Fetch `range` on a *fresh* connection. `sink` receives body bytes as
  /// they are read; `on_done` fires once the full range has been read.
  void fetch_range(http::ByteRange range, ByteSink sink, std::function<void()> on_done);

  /// Fetch `range` on the persistent connection (created on first use).
  void fetch_range_persistent(http::ByteRange range, ByteSink sink,
                              std::function<void()> on_done);

  /// Abort all activity (viewer interruption).
  void stop();

  [[nodiscard]] std::size_t connections_opened() const { return connections_opened_; }
  [[nodiscard]] std::uint64_t body_bytes_fetched() const { return body_bytes_; }

 private:
  struct Fetch {
    tcp::Connection* connection{nullptr};
    std::unique_ptr<VideoStreamServer> server;  ///< empty for persistent reuse
    std::uint64_t expected_body{0};
    std::uint64_t head_bytes{0};
    bool head_seen{false};
    std::uint64_t body_delivered{0};
    std::uint64_t read_before{0};  ///< endpoint total_read at fetch start
    ByteSink sink;
    std::function<void()> on_done;
    bool done{false};
  };

  void start_fetch(tcp::Connection& conn, std::unique_ptr<VideoStreamServer> server,
                   http::ByteRange range, ByteSink sink, std::function<void()> on_done);
  void on_readable(Fetch& fetch);

  sim::Simulator& sim_;
  tcp::Fabric& fabric_;
  video::VideoMeta video_;
  tcp::TcpOptions client_options_;
  tcp::TcpOptions server_options_;

  std::vector<std::unique_ptr<Fetch>> fetches_;
  tcp::Connection* persistent_{nullptr};
  std::unique_ptr<VideoStreamServer> persistent_server_;
  std::vector<Fetch*> persistent_queue_;  ///< fetches pending on the persistent conn
  std::size_t connections_opened_{0};
  std::uint64_t body_bytes_{0};
  bool stopped_{false};
};

}  // namespace vstream::streaming
