// Range-request fetch machinery over fresh or reused TCP connections.
//
// The iPad YouTube client fetched one video with up to 37 successive TCP
// connections carrying ranged GETs (Section 5.1.3); Netflix used "a large
// number of TCP connections" per session (Section 5.2.2) and showed an ack
// clock exactly when a block rode a fresh connection. `FetchManager` gives
// the clients both modes: a fresh connection per fetch, or a persistent
// connection issuing successive ranged GETs.
//
// Resilience: every issued fetch is guarded by a no-progress watchdog on
// the sim clock. When a fault window (net/dynamics.hpp) silences the
// connection, the watchdog times the request out, abandons the connection,
// and — after a bounded exponential backoff (RetryPolicy) — re-establishes
// a fresh TCP connection requesting the still-missing byte range. A fetch
// that exhausts its retry budget completes short instead of hanging the
// client.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "http/exchange.hpp"
#include "obs/span.hpp"
#include "streaming/clients.hpp"
#include "streaming/retry.hpp"
#include "streaming/video_server.hpp"
#include "tcp/connection.hpp"
#include "video/metadata.hpp"

namespace vstream::obs {
class Counter;
}

namespace vstream::streaming {

class FetchManager {
 public:
  FetchManager(sim::Simulator& sim, tcp::Fabric& fabric, video::VideoMeta video,
               tcp::TcpOptions client_options, tcp::TcpOptions server_options,
               RetryPolicy retry = {});

  /// Fetch `range` on a *fresh* connection. `sink` receives body bytes as
  /// they are read; `on_done` fires once the full range has been read (or
  /// the retry budget is exhausted and the fetch is abandoned short).
  void fetch_range(http::ByteRange range, ByteSink sink, std::function<void()> on_done);

  /// Fetch `range` on the persistent connection (created on first use, and
  /// re-established after a timeout).
  void fetch_range_persistent(http::ByteRange range, ByteSink sink,
                              std::function<void()> on_done);

  /// Abort all activity (viewer interruption).
  void stop();

  /// Fired whenever a retry is scheduled, with the fetch's attempt number
  /// (1 for the first retry). Clients use it for bitrate downswitch.
  void set_on_retry(std::function<void(std::uint32_t)> cb) { on_retry_ = std::move(cb); }

  [[nodiscard]] std::size_t connections_opened() const { return connections_opened_; }
  [[nodiscard]] std::uint64_t body_bytes_fetched() const { return body_bytes_; }
  [[nodiscard]] std::uint32_t retries() const { return retries_; }
  [[nodiscard]] std::uint32_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint32_t abandoned() const { return abandoned_; }
  [[nodiscard]] const RetryPolicy& retry_policy() const { return retry_; }

 private:
  struct Fetch {
    tcp::Connection* connection{nullptr};
    std::unique_ptr<VideoStreamServer> server;  ///< empty for persistent reuse
    std::uint64_t expected_body{0};  ///< bytes still owed in the current attempt
    std::uint64_t head_bytes{0};
    bool head_seen{false};
    std::uint64_t body_delivered{0};  ///< body bytes of the current attempt
    std::uint64_t read_before{0};     ///< endpoint total_read at attempt start
    ByteSink sink;
    std::function<void()> on_done;
    bool done{false};
    // Resilience bookkeeping.
    std::uint32_t attempts{0};         ///< retries performed so far
    std::uint64_t progress_mark{0};    ///< endpoint total_read at last watchdog check
    sim::EventHandle watchdog;
    bool persistent{false};
    /// Logical-fetch lifecycle span (issue → first byte → done); survives
    /// retries, so its duration covers backoffs and reissues too. Inert
    /// when the world runs unobserved.
    obs::Span span;
  };

  void start_fetch(tcp::Connection& conn, std::unique_ptr<VideoStreamServer> server,
                   http::ByteRange range, ByteSink sink, std::function<void()> on_done);
  void on_readable(Fetch& fetch);
  void arm_watchdog(Fetch& fetch);
  void on_watchdog(Fetch& fetch);
  void abandon_connection(Fetch& fetch);
  void schedule_retry(Fetch& fetch);
  void reissue_fresh(Fetch& fetch);
  void reopen_persistent();
  void give_up(Fetch& fetch);
  void finish(Fetch& fetch);
  void emit_retry_event(const Fetch& fetch, double backoff_s, bool gave_up);

  sim::Simulator& sim_;
  tcp::Fabric& fabric_;
  video::VideoMeta video_;
  tcp::TcpOptions client_options_;
  tcp::TcpOptions server_options_;
  RetryPolicy retry_;

  std::vector<std::unique_ptr<Fetch>> fetches_;
  tcp::Connection* persistent_{nullptr};
  std::unique_ptr<VideoStreamServer> persistent_server_;
  std::vector<Fetch*> persistent_queue_;  ///< fetches pending on the persistent conn
  /// Servers detached by a retry: stopped, but kept alive until the manager
  /// dies — their endpoints may still surface already-scheduled events.
  std::vector<std::unique_ptr<VideoStreamServer>> retired_servers_;
  std::size_t connections_opened_{0};
  std::uint64_t body_bytes_{0};
  std::uint32_t retries_{0};
  std::uint32_t timeouts_{0};
  std::uint32_t abandoned_{0};
  bool stopped_{false};
  std::function<void(std::uint32_t)> on_retry_;
  obs::Counter* ctr_retries_{nullptr};
  obs::Counter* ctr_timeouts_{nullptr};
};

}  // namespace vstream::streaming
