// Multi-session topologies: N viewers in one simulated world, contending
// for a shared bottleneck (Section 6's aggregate regime).
//
// `run_session` gives every session a private world — the right tool for
// Table 1's per-session strategy signatures, but structurally unable to
// say anything about *aggregate* traffic: Eq. 3/4, the dimensioning rule,
// and §6.2's interruption waste are all statements about superposed
// sessions sharing a link. `run_topology` instantiates many
// `SessionInstance`s inside one `sim::Simulator`, each on its own access
// leg behind a `net::SharedBottleneck`, with arrivals driven by a
// deterministic arrival process (Poisson churn, flash crowds, diurnal
// load) from forked `sim::Rng` streams. The world samples every session's
// application-delivered video bytes into fixed windows — the empirical
// R(t) that the closed forms in model/aggregate.hpp predict.
//
// Determinism: everything derives from `TopologyConfig::seed` through
// tagged forks in a fixed order, so twin runs fingerprint identically —
// including across `--jobs` when sharded with
// runner::run_topologies_streamed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "model/aggregate.hpp"
#include "net/bottleneck.hpp"
#include "net/cross_traffic.hpp"
#include "net/dynamics.hpp"
#include "stats/windowed_rate.hpp"
#include "streaming/session.hpp"

namespace vstream::streaming {

/// Parametric arrival processes. Kept as data (not a std::function) so a
/// schedule is comparable, serialisable and — crucially — deterministic:
/// `generate_arrivals` is the only interpreter.
struct ArrivalSchedule {
  enum class Kind : std::uint8_t {
    kImmediate,   ///< every session arrives at `start_s`
    kPoisson,     ///< homogeneous Poisson churn at `rate_per_s` (the model's lambda)
    kFlashCrowd,  ///< all sessions land uniformly in [start_s, start_s + spread_s)
    kDiurnal,     ///< Poisson with sinusoidal intensity (thinning)
  };

  Kind kind{Kind::kImmediate};
  double start_s{0.0};
  double rate_per_s{1.0};   ///< kPoisson / kDiurnal base intensity
  double spread_s{1.0};     ///< kFlashCrowd arrival window
  double period_s{600.0};   ///< kDiurnal cycle length (sim-scale "day")
  double depth{0.5};        ///< kDiurnal modulation: lambda(t) in rate*(1 +/- depth)

  void validate() const;
};

/// Deterministic arrival times for up to `count` sessions within
/// [0, horizon_s]. Poisson/diurnal stop at whichever of count/horizon
/// comes first, so the realized session count is itself part of the
/// arrival statistics.
[[nodiscard]] std::vector<double> generate_arrivals(const ArrivalSchedule& schedule,
                                                    std::size_t count, double horizon_s,
                                                    sim::Rng& rng);

/// A viewer population: how sessions arrive, plus per-session variation
/// (encoding rate, duration, watch fraction) drawn from the session's own
/// rng stream. Built fluently by `WorkloadBuilder`
/// (streaming/topology_builder.hpp).
struct Workload {
  ArrivalSchedule arrivals;
  /// Invoked once per session before it starts: (session index, session
  /// rng, config to mutate). Draws must come from the passed rng only.
  std::function<void(std::size_t, sim::Rng&, SessionConfig&)> customize;
};

struct TopologyConfig {
  /// Per-session template; `run_topology` forces `topology_attached` and
  /// validates it (which rejects the private-path-only knobs).
  SessionConfig session;
  /// Maximum sessions to admit (arrival processes may produce fewer within
  /// the horizon).
  std::size_t sessions{1};
  ArrivalSchedule arrivals;
  /// Per-session variation hook; see Workload::customize.
  std::function<void(std::size_t, sim::Rng&, SessionConfig&)> customize;
  net::SharedBottleneck::Config bottleneck;
  /// Fault injection on the shared link (absolute world times).
  net::ImpairmentSchedule bottleneck_impairments;
  /// Competing non-video load injected straight into the bottleneck queue;
  /// its connection id is forced to SharedBottleneck::kForeignId.
  std::optional<net::CrossTraffic::Config> cross_traffic;
  double horizon_s{60.0};        ///< world end (every session hard-stops here)
  double sample_window_s{1.0};   ///< R(t) averaging window
  double warmup_s{0.0};          ///< discard R(t) before this (arrival ramp-up)
  std::uint64_t seed{1};
  /// World digest (event order + folded outcome); see fingerprint_topology.
  check::StateDigest* digest{nullptr};
  /// Per-world allocator, as in SessionConfig::arena.
  sim::ArenaResource* arena{nullptr};

  void validate() const;
};

struct TopologyResult {
  std::size_t sessions_started{0};
  std::size_t sessions_finished{0};     ///< playback ran to the end
  std::size_t sessions_interrupted{0};  ///< viewer abandoned (watch_fraction)
  std::size_t sessions_active_at_end{0};
  std::size_t connections{0};  ///< TCP connections across all sessions
  std::uint64_t bytes_downloaded{0};  ///< application bytes read by all clients
  /// §6.2: bytes downloaded but never played by interrupted viewers.
  std::uint64_t wasted_bytes{0};
  /// Video payload that crossed the bottleneck — the wire view, so
  /// retransmitted bytes count twice. R(t) samples the application
  /// delivery stream instead (`aggregate`), which the transport dedupes.
  std::uint64_t video_payload_bytes{0};
  std::uint64_t cross_traffic_bytes{0};       ///< foreign payload delivered
  std::uint64_t bottleneck_wire_bytes{0};     ///< everything, headers included
  std::uint64_t bottleneck_dropped_queue{0};  ///< endogenous congestion drops
  std::uint64_t bottleneck_dropped_loss{0};
  /// Per-window aggregate video rate R(t) after warmup, in bits/s.
  stats::WindowStats aggregate;
  /// Concurrent sessions sampled once per window after warmup.
  stats::WindowStats concurrency;
  // Measured model inputs, summed over started sessions (divide by
  // sessions_started / goodput_samples for the means):
  double sum_encoding_bps{0.0};  ///< e: true (selected) encoding rates
  double sum_duration_s{0.0};    ///< L: configured video durations
  double sum_goodput_bps{0.0};   ///< G: per-session transfer goodput
  std::size_t goodput_samples{0};
  double realized_arrival_rate_per_s{0.0};  ///< lambda-hat = started / horizon
  std::uint64_t sim_events{0};
  std::size_t sim_max_events_pending{0};

  [[nodiscard]] double mean_aggregate_bps() const { return aggregate.mean(); }
  [[nodiscard]] double variance_aggregate() const { return aggregate.variance(); }
  [[nodiscard]] double mean_encoding_bps() const {
    return sessions_started > 0 ? sum_encoding_bps / static_cast<double>(sessions_started) : 0.0;
  }
  [[nodiscard]] double mean_duration_s() const {
    return sessions_started > 0 ? sum_duration_s / static_cast<double>(sessions_started) : 0.0;
  }
  [[nodiscard]] double mean_goodput_bps() const {
    return goodput_samples > 0 ? sum_goodput_bps / static_cast<double>(goodput_samples) : 0.0;
  }

  /// The measured inputs of Eq. 3/4, ready for the closed forms — the
  /// empirical-vs-analytical showdown compares
  /// `model::mean_aggregate_rate_bps(measured_model_params())` against
  /// `mean_aggregate_bps()` (and likewise the variances).
  [[nodiscard]] model::AggregateParams measured_model_params() const {
    return model::AggregateParams{.lambda_per_s = realized_arrival_rate_per_s,
                                  .mean_encoding_bps = mean_encoding_bps(),
                                  .mean_duration_s = mean_duration_s(),
                                  .mean_download_rate_bps = mean_goodput_bps()};
  }
};

/// Run one multi-session world to its horizon. Memory is O(arrivals): a
/// retired session keeps its (quiesced) machinery until the world ends, so
/// size per-world session counts accordingly and shard bigger runs with
/// runner::run_topologies_streamed.
[[nodiscard]] TopologyResult run_topology(const TopologyConfig& config);

/// Fold the headline outcome into `digest` after the run — the topology
/// counterpart of `fold_outcome` (scenarios.hpp), shared by the sweep
/// digest so a divergence the event stream missed still flips the value.
void fold_topology_outcome(check::StateDigest& digest, const TopologyResult& result);

/// Run with a digest attached and fingerprint the result (event order +
/// folded outcome). Twin configs must produce equal fingerprints.
struct TopologyFingerprint {
  std::uint64_t digest{0};
  std::uint64_t words_mixed{0};
  std::uint64_t sim_events{0};
  std::uint64_t bytes_downloaded{0};

  friend bool operator==(const TopologyFingerprint&, const TopologyFingerprint&) = default;
};

[[nodiscard]] TopologyFingerprint fingerprint_topology(const TopologyConfig& config);

}  // namespace vstream::streaming
