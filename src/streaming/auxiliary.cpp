#include "streaming/auxiliary.hpp"

namespace vstream::streaming {

AuxiliaryTraffic::AuxiliaryTraffic(sim::Simulator& sim, tcp::Fabric& fabric, Config config,
                                   sim::Rng rng)
    : sim_{sim}, fabric_{fabric}, config_{config}, rng_{rng} {}

void AuxiliaryTraffic::start() {
  const auto assets = static_cast<std::uint32_t>(rng_.uniform_int(
      config_.asset_count_min, config_.asset_count_max));
  for (std::uint32_t i = 0; i < assets; ++i) {
    const auto bytes = static_cast<std::uint64_t>(rng_.uniform(
        static_cast<double>(config_.asset_bytes_min),
        static_cast<double>(config_.asset_bytes_max)));
    open_asset(bytes, rng_.uniform(0.0, config_.start_spread_s));
  }
  if (config_.beacon_period_s > 0.0) open_beacon_channel();
}

void AuxiliaryTraffic::stop() {
  stopped_ = true;
  if (beacon_timer_) beacon_timer_->stop();
}

void AuxiliaryTraffic::open_asset(std::uint64_t bytes, double delay_s) {
  sim_.schedule_after(sim::Duration::seconds(delay_s), [this, bytes] {
    if (stopped_) return;
    auto& conn = fabric_.create_connection({}, {}, config_.host);
    ++connections_;
    // Static asset server: serve `bytes` per request, whatever the target.
    servers_.push_back(std::make_unique<http::HttpServer>(
        conn.server(),
        [bytes](const http::HttpRequest&, const http::HttpServer::MakeResponder& make) {
          auto responder = make(bytes);
          http::HttpResponse head;
          head.content_length = bytes;
          head.headers["Content-Type"] = "image/jpeg";
          responder->send_head(head);
          responder->send_body(bytes);
        }));
    tcp::Connection* c = &conn;
    conn.client().set_on_readable([this, c] {
      const auto r = c->client().read(UINT64_MAX);
      bytes_ += r.bytes;
    });
    conn.client().set_on_established([c] {
      http::HttpClient http{c->client()};
      http::HttpRequest req;
      req.target = "/assets/related";
      req.host = "static.videostream.example";
      http.send_request(req);
    });
    conn.open();
  });
}

void AuxiliaryTraffic::open_beacon_channel() {
  auto& conn = fabric_.create_connection({}, {}, config_.host);
  ++connections_;
  beacon_conn_ = &conn;
  const std::uint64_t reply = config_.beacon_bytes;
  servers_.push_back(std::make_unique<http::HttpServer>(
      conn.server(),
      [reply](const http::HttpRequest&, const http::HttpServer::MakeResponder& make) {
        auto responder = make(reply);
        http::HttpResponse head;
        head.content_length = reply;
        head.headers["Content-Type"] = "application/json";
        responder->send_head(head);
        responder->send_body(reply);
      }));
  conn.client().set_on_readable([this] {
    const auto r = beacon_conn_->client().read(UINT64_MAX);
    bytes_ += r.bytes;
  });
  beacon_timer_ = std::make_unique<sim::PeriodicTimer>(
      sim_, sim::Duration::seconds(config_.beacon_period_s), [this] {
        if (stopped_ || beacon_conn_->client().state() != tcp::TcpState::kEstablished) return;
        http::HttpClient http{beacon_conn_->client()};
        http::HttpRequest req;
        req.method = "POST";
        req.target = "/stats/watchtime";
        req.host = "beacon.videostream.example";
        http.send_request(req);
      });
  conn.client().set_on_established([this] { beacon_timer_->start(); });
  conn.open();
}

}  // namespace vstream::streaming
