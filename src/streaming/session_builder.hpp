// Fluent construction of streaming sessions — the N=1 case.
//
// `SessionConfig` stays a plain aggregate (brace-init keeps working and the
// scenario catalog uses it), but sessions assembled in examples, benches,
// and sweeps read better — and fail earlier — through the builder. Every
// chainable knob lives in `SessionConfigurator` (streaming/
// topology_builder.hpp), shared verbatim with `TopologyBuilder`: this class
// only decides what `build()` means — a validated private-world config —
// so there is exactly one copy of the setters and one validate() path.
//
//   auto result = streaming::SessionBuilder{}
//                     .service(streaming::Service::kNetflix)
//                     .container(video::Container::kSilverlight)
//                     .vantage(net::Vantage::kResidence)
//                     .video(meta)
//                     .impairments(net::ImpairmentSchedule{}.blackout(
//                         sim::SimTime::from_seconds(30.0), sim::Duration::seconds(10.0)))
//                     .run();
#pragma once

#include "streaming/topology_builder.hpp"

namespace vstream::streaming {

class SessionBuilder : public SessionConfigurator<SessionBuilder> {
 public:
  SessionBuilder() = default;
  /// Start from an existing config (e.g. a catalog scenario) and override.
  explicit SessionBuilder(SessionConfig base) : SessionConfigurator{std::move(base)} {}

  /// Validate and hand out the config. Throws std::invalid_argument on an
  /// impossible configuration (negative duration, watch fraction outside
  /// (0,1], overlapping impairment windows, a Table 1 "Not Applicable"
  /// combination).
  [[nodiscard]] SessionConfig build() const {
    cfg_.validate();
    return cfg_;
  }

  /// Validate and run in one step.
  [[nodiscard]] SessionResult run() const { return run_session(build()); }
};

}  // namespace vstream::streaming
