// Fluent construction of streaming sessions.
//
// `SessionConfig` stays a plain aggregate (brace-init keeps working and the
// scenario catalog uses it), but sessions assembled in examples, benches,
// and sweeps read better — and fail earlier — through the builder: named
// chainable setters for every knob, and `build()` runs
// `SessionConfig::validate()` so an impossible configuration (negative
// duration, watch fraction outside (0,1], overlapping impairment windows,
// a Table 1 "Not Applicable" combination) throws at construction time
// instead of somewhere inside the simulation.
//
//   auto result = streaming::SessionBuilder{}
//                     .service(streaming::Service::kNetflix)
//                     .container(video::Container::kSilverlight)
//                     .vantage(net::Vantage::kResidence)
//                     .video(meta)
//                     .impairments(net::ImpairmentSchedule{}.blackout(
//                         sim::SimTime::from_seconds(30.0), sim::Duration::seconds(10.0)))
//                     .run();
#pragma once

#include "net/profile.hpp"
#include "streaming/session.hpp"

namespace vstream::streaming {

class SessionBuilder {
 public:
  SessionBuilder() = default;
  /// Start from an existing config (e.g. a catalog scenario) and override.
  explicit SessionBuilder(SessionConfig base) : cfg_{std::move(base)} {}

  SessionBuilder& service(Service s) {
    cfg_.service = s;
    return *this;
  }
  SessionBuilder& container(video::Container c) {
    cfg_.container = c;
    return *this;
  }
  SessionBuilder& application(Application a) {
    cfg_.application = a;
    return *this;
  }
  SessionBuilder& network(net::NetworkProfile p) {
    cfg_.network = std::move(p);
    return *this;
  }
  /// Convenience: the paper's four capture vantages (Table 2).
  SessionBuilder& vantage(net::Vantage v) { return network(net::profile_for(v)); }
  SessionBuilder& video(video::VideoMeta v) {
    cfg_.video = std::move(v);
    return *this;
  }
  SessionBuilder& capture_duration_s(double s) {
    cfg_.capture_duration_s = s;
    return *this;
  }
  /// Viewer abandons after this fraction of the video (beta, §6.2).
  SessionBuilder& watch_fraction(double f) {
    cfg_.watch_fraction = f;
    return *this;
  }
  SessionBuilder& watch_to_end() {
    cfg_.watch_fraction.reset();
    return *this;
  }
  SessionBuilder& seed(std::uint64_t s) {
    cfg_.seed = s;
    return *this;
  }
  SessionBuilder& server_idle_cwnd_reset(bool on = true) {
    cfg_.server_idle_cwnd_reset = on;
    return *this;
  }
  SessionBuilder& bandwidth_jitter(double j) {
    cfg_.bandwidth_jitter = j;
    return *this;
  }
  SessionBuilder& auxiliary_traffic(bool on = true) {
    cfg_.auxiliary_traffic = on;
    return *this;
  }
  SessionBuilder& trace_sink(obs::TraceSink* sink) {
    cfg_.trace_sink = sink;
    return *this;
  }
  SessionBuilder& digest(check::StateDigest* d) {
    cfg_.digest = d;
    return *this;
  }
  /// Per-world allocator for the simulator's event machinery (non-owning;
  /// single-threaded — never share between concurrent sessions).
  SessionBuilder& arena(sim::ArenaResource* a) {
    cfg_.arena = a;
    return *this;
  }
  SessionBuilder& keep_full_trace(bool on = true) {
    cfg_.keep_full_trace = on;
    return *this;
  }
  SessionBuilder& store_trace(bool on = true) {
    cfg_.store_trace = on;
    return *this;
  }
  SessionBuilder& streaming_report(bool on = true) {
    cfg_.streaming_report = on;
    return *this;
  }
  /// Fault injection on the downstream access link (net/dynamics.hpp).
  SessionBuilder& impairments(net::ImpairmentSchedule schedule) {
    cfg_.impairments = std::move(schedule);
    return *this;
  }
  SessionBuilder& fetch_retry(RetryPolicy policy) {
    cfg_.fetch_retry = policy;
    return *this;
  }
  SessionBuilder& adaptive_bitrate(bool on = true) {
    cfg_.adaptive_bitrate = on;
    return *this;
  }

  /// Validate and hand out the config. Throws std::invalid_argument on an
  /// impossible configuration.
  [[nodiscard]] SessionConfig build() const {
    cfg_.validate();
    return cfg_;
  }

  /// Validate and run in one step.
  [[nodiscard]] SessionResult run() const { return run_session(build()); }

 private:
  SessionConfig cfg_;
};

}  // namespace vstream::streaming
