#include "streaming/adaptive.hpp"

#include <algorithm>

namespace vstream::streaming {

AdaptiveRateController::AdaptiveRateController(Config config) : config_{std::move(config)} {
  if (config_.ladder_bps.empty()) {
    throw std::invalid_argument{"AdaptiveRateController: empty ladder"};
  }
  if (!std::is_sorted(config_.ladder_bps.begin(), config_.ladder_bps.end())) {
    throw std::invalid_argument{"AdaptiveRateController: ladder must be ascending"};
  }
  if (config_.safety_factor <= 0.0 || config_.safety_factor > 1.0) {
    throw std::invalid_argument{"AdaptiveRateController: safety factor in (0,1]"};
  }
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0) {
    throw std::invalid_argument{"AdaptiveRateController: ewma alpha in (0,1]"};
  }
}

std::size_t AdaptiveRateController::best_index_for(double bandwidth_bps) const {
  const double budget = config_.safety_factor * bandwidth_bps;
  std::size_t best = 0;
  for (std::size_t i = 0; i < config_.ladder_bps.size(); ++i) {
    if (config_.ladder_bps[i] <= budget) best = i;
  }
  return best;
}

void AdaptiveRateController::seed(double bandwidth_estimate_bps) {
  ewma_bps_ = std::max(0.0, bandwidth_estimate_bps);
  index_ = best_index_for(ewma_bps_);
}

bool AdaptiveRateController::on_block(double bytes, double transfer_s, double buffer_s) {
  if (bytes <= 0.0 || transfer_s <= 0.0) return false;
  const double sample = bytes * 8.0 / transfer_s;
  ewma_bps_ = ewma_bps_ <= 0.0
                  ? sample
                  : (1.0 - config_.ewma_alpha) * ewma_bps_ + config_.ewma_alpha * sample;

  // An almost-dry buffer is an emergency: trust the newest sample rather
  // than waiting for the smoothed estimate to decay.
  const bool panic = buffer_s < config_.downshift_buffer_s;
  const double estimate = panic ? std::min(ewma_bps_, sample) : ewma_bps_;
  const std::size_t target = best_index_for(estimate);
  std::size_t next = index_;
  if (target > index_ && buffer_s >= config_.upshift_buffer_s) {
    next = index_ + 1;  // conservative: one rung at a time
  } else if (target < index_) {
    // Panic: jump straight to the sustainable rate; otherwise step down.
    next = panic ? target : index_ - 1;
  }
  if (next == index_) return false;
  index_ = next;
  ++switches_;
  return true;
}

bool AdaptiveRateController::on_fault() {
  if (index_ == 0) return false;
  --index_;
  ++switches_;
  // Pull the estimate down to the new rung so the next throughput samples
  // have to earn the upshift back through the normal hysteresis.
  ewma_bps_ = std::min(ewma_bps_, config_.ladder_bps[index_] / config_.safety_factor);
  return true;
}

}  // namespace vstream::streaming
