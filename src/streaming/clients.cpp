#include "streaming/clients.hpp"

#include <stdexcept>

namespace vstream::streaming {
namespace {

void collect_responses(std::vector<std::any>& tags, std::vector<http::HttpResponse>& out) {
  for (auto& t : tags) {
    if (t.type() == typeid(http::HttpResponse)) {
      out.push_back(std::any_cast<http::HttpResponse>(std::move(t)));
    }
  }
}

}  // namespace

GreedyClient::GreedyClient(tcp::Endpoint& endpoint, ByteSink sink)
    : endpoint_{endpoint}, sink_{std::move(sink)} {
  endpoint_.set_on_readable([this] { drain(); });
}

void GreedyClient::drain() {
  if (stopped_) return;
  auto result = endpoint_.read(UINT64_MAX);
  bytes_ += result.bytes;
  collect_responses(result.tags, responses_);
  if (sink_ && result.bytes > 0) sink_(result.bytes);
}

PullThrottleClient::PullThrottleClient(sim::Simulator& sim, tcp::Endpoint& endpoint, Config config,
                                       ByteSink sink)
    : sim_{sim},
      endpoint_{endpoint},
      config_{config},
      sink_{std::move(sink)},
      cycle_timer_{sim, sim::Duration::seconds(1.0), [this] { on_cycle(); }} {
  if (config_.pull_quantum_bytes == 0) {
    throw std::invalid_argument{"PullThrottleClient: zero pull quantum"};
  }
  if (config_.encoding_bps <= 0.0 || config_.accumulation_ratio <= 0.0) {
    throw std::invalid_argument{"PullThrottleClient: bad rate parameters"};
  }
  const double steady_rate = config_.accumulation_ratio * config_.encoding_bps;
  const double cycle_s = static_cast<double>(config_.pull_quantum_bytes) * 8.0 / steady_rate;
  cycle_timer_.set_period(sim::Duration::seconds(cycle_s));
  endpoint_.set_on_readable([this] { on_readable(); });
}

void PullThrottleClient::stop() {
  stopped_ = true;
  cycle_timer_.stop();
}

void PullThrottleClient::on_readable() {
  if (stopped_) return;
  if (!steady_) {
    // Buffering phase: read greedily until the target.
    auto result = endpoint_.read(UINT64_MAX);
    bytes_ += result.bytes;
    collect_responses(result.tags, responses_);
    if (sink_ && result.bytes > 0) sink_(result.bytes);
    if (bytes_ >= config_.buffering_target_bytes) {
      steady_ = true;
      allowance_ = 0;
      cycle_timer_.start();  // first pull one cycle from now
    }
    return;
  }
  drain_allowance();
}

void PullThrottleClient::on_cycle() {
  allowance_ += config_.pull_quantum_bytes;
  drain_allowance();
}

void PullThrottleClient::drain_allowance() {
  if (stopped_ || allowance_ == 0) return;
  auto result = endpoint_.read(allowance_);
  allowance_ -= result.bytes;
  bytes_ += result.bytes;
  collect_responses(result.tags, responses_);
  if (sink_ && result.bytes > 0) sink_(result.bytes);
}

}  // namespace vstream::streaming
