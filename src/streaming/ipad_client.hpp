// Native iPad YouTube client (Section 5.1.3, Fig 7).
//
// The paper saw this client fetch one video over dozens of successive TCP
// connections carrying ranged GETs (37 in the first 60 s for Video1), with
// per-connection amounts from 64 kB to 8 MB: large chunks during periodic
// buffering, then paced block fetches whose size grows with the encoding
// rate — a *combination* of strategies ("Multiple" in Table 1).
#pragma once

#include <algorithm>
#include <cstdint>

#include "streaming/fetch.hpp"

namespace vstream::streaming {

class IpadYouTubeClient {
 public:
  struct Config {
    std::uint64_t initial_buffer_bytes{10 * 1024 * 1024};
    std::uint64_t buffering_chunk_bytes{8 * 1024 * 1024};
    /// Steady-state block carries this much playback time; the byte size
    /// therefore scales with the encoding rate (Fig 7b).
    double block_playback_s{3.5};
    std::uint64_t min_block_bytes{64 * 1024};
    std::uint64_t max_block_bytes{8 * 1024 * 1024};
    double accumulation_ratio{1.2};
    /// Every this-many steady cycles the client re-buffers with one large
    /// chunk instead of a paced block — the "periodic buffering followed by
    /// short ON-OFF cycles" pattern of the paper's Video1 (Fig 7a).
    std::uint32_t rebuffer_every_cycles{8};
    std::uint64_t rebuffer_chunk_bytes{6 * 1024 * 1024};
    /// Below this encoding rate the client behaves like the paper's Video2:
    /// one persistent connection, plain short cycles, no re-buffering.
    double single_connection_below_bps{0.5e6};
  };

  IpadYouTubeClient(sim::Simulator& sim, FetchManager& fetches, const video::VideoMeta& video,
                    Config config, ByteSink sink);

  void start();
  void stop();

  [[nodiscard]] std::uint64_t block_bytes() const { return block_bytes_; }
  [[nodiscard]] std::uint64_t bytes_fetched() const { return fetched_; }
  [[nodiscard]] bool in_steady_state() const { return steady_; }
  /// True in the paper's Video2 regime (one persistent connection).
  [[nodiscard]] bool single_connection_mode() const { return single_connection_; }

 private:
  void fetch_next_buffering_chunk();
  void on_cycle();

  sim::Simulator& sim_;
  FetchManager& fetches_;
  Config config_;
  ByteSink sink_;
  std::uint64_t video_bytes_;
  std::uint64_t block_bytes_;
  sim::PeriodicTimer cycle_timer_;
  std::uint64_t offset_{0};
  std::uint64_t fetched_{0};
  std::uint32_t cycle_count_{0};
  std::uint32_t skip_cycles_{0};
  bool single_connection_{false};
  bool steady_{false};
  bool stopped_{false};
  bool fetch_in_flight_{false};
};

}  // namespace vstream::streaming
