#include "streaming/session_instance.hpp"

#include <stdexcept>
#include <string>

#include "http/exchange.hpp"
#include "net/path.hpp"
#include "streaming/auxiliary.hpp"
#include "streaming/fetch.hpp"
#include "streaming/ipad_client.hpp"
#include "streaming/netflix_client.hpp"
#include "streaming/video_server.hpp"
#include "tcp/connection.hpp"
#include "video/container_header.hpp"

namespace vstream::streaming {

using video::Container;

namespace {

tcp::TcpOptions client_options_with_buffer(std::uint64_t recv_bytes) {
  tcp::TcpOptions o;
  o.recv_buffer_bytes = recv_bytes;
  return o;
}

}  // namespace

SessionInstance::SessionInstance(sim::Simulator& sim, tcp::Fabric& fabric,
                                 const SessionConfig& config, sim::Rng rng)
    : sim_{sim}, fabric_{fabric}, cfg_{config}, rng_{std::move(rng)} {
  started_at_s_ = sim_.now().to_seconds();
  wire_combination();
}

SessionInstance::~SessionInstance() = default;

ByteSink SessionInstance::make_sink() {
  return [this](std::uint64_t n) {
    if (first_byte_s_ < 0.0) first_byte_s_ = sim_.now().to_seconds();
    last_byte_s_ = sim_.now().to_seconds();
    if (byte_tap_) byte_tap_(n);
    if (sink_player_ != nullptr) sink_player_->on_bytes_downloaded(n);
  };
}

void SessionInstance::open_single_connection(std::uint64_t client_recv_bytes,
                                             const ServerPacing& pacing) {
  tcp::TcpOptions server_tcp;
  server_tcp.reset_cwnd_after_idle = cfg_.server_idle_cwnd_reset;
  conn_ = &fabric_.create_connection(client_options_with_buffer(client_recv_bytes), server_tcp);
  server_ = std::make_unique<VideoStreamServer>(sim_, conn_->server(), cfg_.video, pacing);
  tcp::Connection* c = conn_;
  const std::string id = cfg_.video.id;
  conn_->client().set_on_established([c, id] {
    http::HttpClient http{c->client()};
    http.send_request(http::make_video_request(id));
  });
}

void SessionInstance::wire_combination() {
  sim::Rng knob_rng = rng_.fork("session-knobs");

  if (cfg_.auxiliary_traffic) {
    auxiliary_ = std::make_unique<AuxiliaryTraffic>(sim_, fabric_, AuxiliaryTraffic::Config{},
                                                    rng_.fork("auxiliary"));
    auxiliary_->start();
  }

  player_rate_bps_ = cfg_.video.encoding_bps;
  const auto mb = [](double x) { return static_cast<std::uint64_t>(x * 1024 * 1024); };

  if (cfg_.service == Service::kYouTube) {
    switch (cfg_.container) {
      case Container::kFlash: {
        // Server-paced push: ~40 s burst, 64 kB blocks, ratio 1.25.
        auto pacing = ServerPacing::youtube_flash();
        pacing.initial_burst_playback_s = 40.0 * knob_rng.uniform(0.85, 1.15);
        open_single_connection(512 * 1024, pacing);
        greedy_ = std::make_unique<GreedyClient>(conn_->client(), make_sink());
        conn_->open();
        break;
      }
      case Container::kFlashHd: {
        // Bulk transfer: nobody throttles HD Flash (Fig 8).
        open_single_connection(512 * 1024, ServerPacing::bulk());
        greedy_ = std::make_unique<GreedyClient>(conn_->client(), make_sink());
        conn_->open();
        break;
      }
      case Container::kHtml5: {
        if (cfg_.application == Application::kFirefox) {
          // Firefox HTML5: bulk, no throttling anywhere.
          open_single_connection(512 * 1024, ServerPacing::bulk());
          greedy_ = std::make_unique<GreedyClient>(conn_->client(), make_sink());
          conn_->open();
        } else if (cfg_.application == Application::kIosNative) {
          // iPad: successive ranged connections, mixed strategy.
          IpadYouTubeClient::Config icfg;
          icfg.initial_buffer_bytes = mb(knob_rng.uniform(8.0, 12.0));
          fetches_ = std::make_unique<FetchManager>(sim_, fabric_, cfg_.video,
                                                    client_options_with_buffer(512 * 1024),
                                                    tcp::TcpOptions{}, cfg_.fetch_retry);
          ipad_ = std::make_unique<IpadYouTubeClient>(sim_, *fetches_, cfg_.video, icfg,
                                                      make_sink());
          ipad_->start();
        } else {
          // IE / Chrome / Android app: bulk server, client pull throttling.
          PullThrottleClient::Config pcfg;
          pcfg.encoding_bps = cfg_.video.encoding_bps;
          std::uint64_t recv_buffer = 0;
          if (cfg_.application == Application::kInternetExplorer) {
            pcfg.buffering_target_bytes = mb(knob_rng.uniform(10.0, 15.0));
            pcfg.pull_quantum_bytes = 256 * 1024;
            pcfg.accumulation_ratio = 1.06;
            recv_buffer = 256 * 1024;
          } else if (cfg_.application == Application::kChrome) {
            pcfg.buffering_target_bytes = mb(knob_rng.uniform(10.0, 15.0));
            pcfg.pull_quantum_bytes = mb(knob_rng.uniform(4.0, 10.0));
            pcfg.accumulation_ratio = 1.34;
            recv_buffer = 512 * 1024;
          } else {  // Android native YouTube app
            pcfg.buffering_target_bytes = mb(knob_rng.uniform(4.0, 8.0));
            pcfg.pull_quantum_bytes = mb(knob_rng.uniform(2.8, 6.0));
            pcfg.accumulation_ratio = 1.24;
            recv_buffer = 512 * 1024;
          }
          open_single_connection(recv_buffer, ServerPacing::bulk());
          pull_ = std::make_unique<PullThrottleClient>(sim_, conn_->client(), pcfg, make_sink());
          conn_->open();
        }
        break;
      }
      case Container::kSilverlight:
        throw std::logic_error{"SessionInstance: unreachable (YouTube/Silverlight)"};
    }
  } else {
    // Netflix: Silverlight on PCs, native app on mobiles.
    NetflixClient::Profile profile = NetflixClient::Profile::pc();
    tcp::TcpOptions server_opts;
    if (cfg_.application == Application::kIosNative) {
      profile = NetflixClient::Profile::ipad();
    } else if (cfg_.application == Application::kAndroidNative) {
      profile = NetflixClient::Profile::android();
      // The long idle OFF periods of the Android app exceed the server RTO;
      // the CDN's RFC 5681 idle restart shows as an ack clock (Fig 9/§5.2.2).
      server_opts.reset_cwnd_after_idle = true;
    }
    profile.adaptive = cfg_.adaptive_bitrate;
    fetches_ = std::make_unique<FetchManager>(sim_, fabric_, cfg_.video,
                                              client_options_with_buffer(512 * 1024), server_opts,
                                              cfg_.fetch_retry);
    netflix_ = std::make_unique<NetflixClient>(sim_, *fetches_, cfg_.video, profile,
                                               cfg_.network.down_bps, make_sink());
    // Bitrate downswitch on transport faults: a timed-out request is
    // stronger evidence of congestion than any throughput sample.
    NetflixClient* nf = netflix_.get();
    fetches_->set_on_retry([nf](std::uint32_t attempt) { nf->on_fetch_retry(attempt); });
    player_rate_bps_ = netflix_->selected_rate_bps();
    netflix_->start();
  }

  // Player: consumes at the (selected) encoding rate, may interrupt.
  PlayerConfig player_cfg;
  player_cfg.encoding_bps = player_rate_bps_;
  player_cfg.duration_s = cfg_.video.duration_s;
  player_cfg.watch_fraction = cfg_.watch_fraction;
  player_ = std::make_unique<Player>(sim_, player_cfg);
  sink_player_ = player_.get();
  player_->set_on_interrupt([this] {
    stop_download();
    if (!quiesced_ && on_quiesce_) {
      quiesced_ = true;
      on_quiesce_();
    }
  });
}

void SessionInstance::stop_download() {
  if (server_) server_->stop();
  if (greedy_) greedy_->stop();
  if (pull_) pull_->stop();
  if (ipad_) ipad_->stop();
  if (netflix_) netflix_->stop();
  if (fetches_) fetches_->stop();
}

void SessionInstance::stop_auxiliary() {
  if (auxiliary_) auxiliary_->stop();
}

void SessionInstance::set_on_quiesce(std::function<void()> fn) {
  on_quiesce_ = std::move(fn);
  player_->set_on_finished([this] {
    stop_download();
    if (!quiesced_ && on_quiesce_) {
      quiesced_ = true;
      on_quiesce_();
    }
  });
}

std::uint64_t SessionInstance::bytes_downloaded() const {
  if (greedy_) return greedy_->bytes_read();
  if (pull_) return pull_->bytes_read();
  if (ipad_) return ipad_->bytes_fetched();
  if (netflix_) return netflix_->bytes_fetched();
  return 0;
}

SessionOutcome SessionInstance::finalize() {
  // Fault/recovery accounting, gathered from every layer that participated:
  // the fetch retry machinery, the player's rebuffer tracking, and the
  // impaired downstream link.
  SessionOutcome outcome;
  if (fetches_) {
    outcome.resilience.fetch_retries = fetches_->retries();
    outcome.resilience.fetch_timeouts = fetches_->timeouts();
    outcome.resilience.fetch_abandoned = fetches_->abandoned();
  }
  outcome.resilience.rebuffer_count = player_->stats().rebuffer_count;
  outcome.resilience.stall_count = player_->stats().stall_count;
  outcome.resilience.stall_time_s = player_->stats().stall_time_s;
  outcome.resilience.longest_stall_s = player_->stats().longest_stall_s;
  outcome.resilience.fault_drops = fabric_.path().down().counters().dropped_fault;
  outcome.resilience.fault_windows = fabric_.path().down().counters().fault_windows;
  if (netflix_) outcome.resilience.rate_switches = netflix_->rate_switches();

  outcome.player = player_->stats();
  outcome.bytes_downloaded = bytes_downloaded();
  outcome.connections = fabric_.connection_count();
  outcome.encoding_bps_true = player_rate_bps_;
  outcome.interrupted_at_s = outcome.player.interrupted ? outcome.player.interrupted_at_s : 0.0;
  outcome.started_at_s = started_at_s_;
  outcome.first_byte_s = first_byte_s_;
  outcome.last_byte_s = last_byte_s_;

  const auto header = video::make_header(cfg_.video);
  sim::Rng noise_rng = rng_.fork("rate-estimate");
  const double noise = noise_rng.lognormal(0.0, 0.15);
  outcome.encoding_bps_estimated =
      cfg_.service == Service::kNetflix
          ? player_rate_bps_
          : video::resolve_encoding_rate(header, cfg_.video.size_bytes(), noise);
  return outcome;
}

}  // namespace vstream::streaming
