// Client-side read policies (Section 5.1).
//
// The HTML5 measurements show the *application* throttles by controlling
// how it reads from the TCP socket, which drives the advertised receive
// window (Fig 2b, 6a):
//   - GreedyClient reads everything as it arrives — Flash (server-paced)
//     and bulk downloads (Firefox HTML5, Flash HD).
//   - PullThrottleClient reads greedily during the buffering phase (until a
//     byte target), then pulls a fixed quantum per cycle. Internet Explorer
//     pulls 256 kB; Chrome and the Android app pull multi-megabyte quanta,
//     producing long ON-OFF cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "http/message.hpp"
#include "sim/periodic_timer.hpp"
#include "tcp/endpoint.hpp"

namespace vstream::streaming {

/// Byte sink fed by every client read (wired to Player::on_bytes_downloaded
/// minus HTTP header bytes; header sizes are negligible but subtracted for
/// exactness by the session layer).
using ByteSink = std::function<void(std::uint64_t)>;

class GreedyClient {
 public:
  GreedyClient(tcp::Endpoint& endpoint, ByteSink sink);

  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_; }
  /// Response heads seen so far (tags collected while reading).
  [[nodiscard]] const std::vector<http::HttpResponse>& responses() const { return responses_; }

  void stop() { stopped_ = true; }

 private:
  void drain();

  tcp::Endpoint& endpoint_;
  ByteSink sink_;
  std::uint64_t bytes_{0};
  std::vector<http::HttpResponse> responses_;
  bool stopped_{false};
};

class PullThrottleClient {
 public:
  struct Config {
    /// Read greedily until this many bytes, then switch to pulling.
    std::uint64_t buffering_target_bytes{12 * 1024 * 1024};
    /// Bytes pulled per steady-state cycle (the block size signature).
    std::uint64_t pull_quantum_bytes{256 * 1024};
    /// Steady-state average rate = ratio x encoding rate.
    double accumulation_ratio{1.05};
    double encoding_bps{1e6};
  };

  PullThrottleClient(sim::Simulator& sim, tcp::Endpoint& endpoint, Config config, ByteSink sink);

  [[nodiscard]] std::uint64_t bytes_read() const { return bytes_; }
  [[nodiscard]] bool in_steady_state() const { return steady_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const std::vector<http::HttpResponse>& responses() const { return responses_; }

  void stop();

 private:
  void on_readable();
  void on_cycle();
  void drain_allowance();

  sim::Simulator& sim_;
  tcp::Endpoint& endpoint_;
  Config config_;
  ByteSink sink_;
  sim::PeriodicTimer cycle_timer_;
  std::uint64_t bytes_{0};
  std::uint64_t allowance_{0};  ///< steady-state read budget
  bool steady_{false};
  bool stopped_{false};
  std::vector<http::HttpResponse> responses_;
};

}  // namespace vstream::streaming
