#include "streaming/fetch.hpp"

#include <stdexcept>

#include "check/contracts.hpp"

namespace vstream::streaming {

FetchManager::FetchManager(sim::Simulator& sim, tcp::Fabric& fabric, video::VideoMeta video,
                           tcp::TcpOptions client_options, tcp::TcpOptions server_options)
    : sim_{sim},
      fabric_{fabric},
      video_{std::move(video)},
      client_options_{client_options},
      server_options_{server_options} {}

void FetchManager::stop() { stopped_ = true; }

void FetchManager::fetch_range(http::ByteRange range, ByteSink sink,
                               std::function<void()> on_done) {
  if (stopped_) return;
  auto& conn = fabric_.create_connection(client_options_, server_options_);
  ++connections_opened_;
  auto server =
      std::make_unique<VideoStreamServer>(sim_, conn.server(), video_, ServerPacing::bulk());
  start_fetch(conn, std::move(server), range, std::move(sink), std::move(on_done));
}

void FetchManager::start_fetch(tcp::Connection& conn, std::unique_ptr<VideoStreamServer> server,
                               http::ByteRange range, ByteSink sink,
                               std::function<void()> on_done) {
  auto fetch = std::make_unique<Fetch>();
  fetch->connection = &conn;
  fetch->server = std::move(server);
  fetch->expected_body = range.length();
  fetch->sink = std::move(sink);
  fetch->on_done = std::move(on_done);

  Fetch* raw = fetch.get();
  fetches_.push_back(std::move(fetch));

  conn.client().set_on_readable([this, raw] { on_readable(*raw); });
  conn.client().set_on_established([this, raw, range] {
    http::HttpClient client{raw->connection->client()};
    client.send_request(http::make_video_request(video_.id, range));
  });
  conn.open();
}

void FetchManager::fetch_range_persistent(http::ByteRange range, ByteSink sink,
                                          std::function<void()> on_done) {
  if (stopped_) return;
  const bool first_use = persistent_ == nullptr;
  if (first_use) {
    persistent_ = &fabric_.create_connection(client_options_, server_options_);
    ++connections_opened_;
    persistent_server_ = std::make_unique<VideoStreamServer>(sim_, persistent_->server(), video_,
                                                             ServerPacing::bulk());
  }

  auto fetch = std::make_unique<Fetch>();
  fetch->connection = persistent_;
  fetch->expected_body = range.length();
  fetch->sink = std::move(sink);
  fetch->on_done = std::move(on_done);
  Fetch* raw = fetch.get();
  fetches_.push_back(std::move(fetch));
  persistent_queue_.push_back(raw);

  const auto issue = [this, raw, range] {
    raw->read_before = persistent_->client().total_read();
    http::HttpClient client{persistent_->client()};
    client.send_request(http::make_video_request(video_.id, range));
  };

  if (first_use) {
    persistent_->client().set_on_readable([this] {
      if (!persistent_queue_.empty()) on_readable(*persistent_queue_.front());
    });
    persistent_->client().set_on_established(issue);
    persistent_->open();
  } else if (persistent_queue_.size() == 1 &&
             persistent_->client().state() == tcp::TcpState::kEstablished) {
    // Idle established connection: issue immediately. Otherwise the fetch
    // is issued when its predecessor completes.
    issue();
  }
}

void FetchManager::on_readable(Fetch& fetch) {
  if (stopped_ || fetch.done) return;
  auto& endpoint = fetch.connection->client();
  auto result = endpoint.read(UINT64_MAX);
  for (auto& t : result.tags) {
    if (t.type() == typeid(http::HttpResponse)) {
      const auto head = std::any_cast<http::HttpResponse>(std::move(t));
      fetch.head_bytes = head.wire_size();
      fetch.head_seen = true;
    }
  }
  if (!fetch.head_seen) return;

  const std::uint64_t stream_read = endpoint.total_read() - fetch.read_before;
  const std::uint64_t body_now =
      stream_read > fetch.head_bytes ? stream_read - fetch.head_bytes : 0;
  if (body_now > fetch.body_delivered) {
    const std::uint64_t delta = body_now - fetch.body_delivered;
    fetch.body_delivered = body_now;
    body_bytes_ += delta;
    if (fetch.sink) fetch.sink(delta);
  }
  // Requests on a shared connection are serialized, so the bytes attributed
  // to this fetch can never exceed the range it asked for.
  VSTREAM_INVARIANT(fetch.body_delivered <= fetch.expected_body,
                    "fetch accounting attributed more body bytes than the requested range");
  if (fetch.body_delivered >= fetch.expected_body) {
    fetch.done = true;
    // Persistent mode: move on to the queued successor.
    if (fetch.connection == persistent_ && !persistent_queue_.empty() &&
        persistent_queue_.front() == &fetch) {
      persistent_queue_.erase(persistent_queue_.begin());
      if (!persistent_queue_.empty()) {
        Fetch* next = persistent_queue_.front();
        next->read_before = persistent_->client().total_read();
        http::HttpClient client{persistent_->client()};
        http::ByteRange range{0, next->expected_body - 1};
        // Offsets are irrelevant to traffic shape; length drives bytes.
        client.send_request(http::make_video_request(video_.id, range));
      }
    }
    if (fetch.on_done) fetch.on_done();
  }
}

}  // namespace vstream::streaming
