#include "streaming/fetch.hpp"

#include <stdexcept>

#include "check/contracts.hpp"
#include "obs/context.hpp"

namespace vstream::streaming {

FetchManager::FetchManager(sim::Simulator& sim, tcp::Fabric& fabric, video::VideoMeta video,
                           tcp::TcpOptions client_options, tcp::TcpOptions server_options,
                           RetryPolicy retry)
    : sim_{sim},
      fabric_{fabric},
      video_{std::move(video)},
      client_options_{client_options},
      server_options_{server_options},
      retry_{retry} {
  retry_.validate();
  if (obs::ObsContext* obs = sim_.obs()) {
    ctr_retries_ = &obs->metrics().counter("fetch.retries");
    ctr_timeouts_ = &obs->metrics().counter("fetch.timeouts");
  }
}

void FetchManager::stop() {
  stopped_ = true;
  for (auto& fetch : fetches_) fetch->watchdog.cancel();
}

void FetchManager::fetch_range(http::ByteRange range, ByteSink sink,
                               std::function<void()> on_done) {
  if (stopped_) return;
  auto& conn = fabric_.create_connection(client_options_, server_options_);
  ++connections_opened_;
  auto server =
      std::make_unique<VideoStreamServer>(sim_, conn.server(), video_, ServerPacing::bulk());
  start_fetch(conn, std::move(server), range, std::move(sink), std::move(on_done));
}

void FetchManager::start_fetch(tcp::Connection& conn, std::unique_ptr<VideoStreamServer> server,
                               http::ByteRange range, ByteSink sink,
                               std::function<void()> on_done) {
  auto fetch = std::make_unique<Fetch>();
  fetch->connection = &conn;
  fetch->server = std::move(server);
  fetch->expected_body = range.length();
  fetch->sink = std::move(sink);
  fetch->on_done = std::move(on_done);

  Fetch* raw = fetch.get();
  fetches_.push_back(std::move(fetch));
  raw->span = obs::open_span(sim_, obs::SpanCategory::kFetch, "fetch",
                             conn.client().connection_id());

  conn.client().set_on_readable([this, raw] { on_readable(*raw); });
  conn.client().set_on_established([this, raw, range] {
    http::HttpClient client{raw->connection->client()};
    client.send_request(http::make_video_request(video_.id, range));
  });
  conn.open();
  arm_watchdog(*raw);
}

void FetchManager::fetch_range_persistent(http::ByteRange range, ByteSink sink,
                                          std::function<void()> on_done) {
  if (stopped_) return;
  const bool first_use = persistent_ == nullptr;
  if (first_use) {
    persistent_ = &fabric_.create_connection(client_options_, server_options_);
    ++connections_opened_;
    persistent_server_ = std::make_unique<VideoStreamServer>(sim_, persistent_->server(), video_,
                                                             ServerPacing::bulk());
  }

  auto fetch = std::make_unique<Fetch>();
  fetch->connection = persistent_;
  fetch->expected_body = range.length();
  fetch->sink = std::move(sink);
  fetch->on_done = std::move(on_done);
  fetch->persistent = true;
  Fetch* raw = fetch.get();
  fetches_.push_back(std::move(fetch));
  persistent_queue_.push_back(raw);
  raw->span = obs::open_span(sim_, obs::SpanCategory::kFetch, "fetch",
                             persistent_->client().connection_id());

  const auto issue = [this, raw, range] {
    raw->read_before = persistent_->client().total_read();
    http::HttpClient client{persistent_->client()};
    client.send_request(http::make_video_request(video_.id, range));
    arm_watchdog(*raw);
  };

  if (first_use) {
    persistent_->client().set_on_readable([this] {
      if (!persistent_queue_.empty()) on_readable(*persistent_queue_.front());
    });
    persistent_->client().set_on_established(issue);
    persistent_->open();
    arm_watchdog(*raw);
  } else if (persistent_queue_.size() == 1 && persistent_ != nullptr &&
             persistent_->client().state() == tcp::TcpState::kEstablished) {
    // Idle established connection: issue immediately. Otherwise the fetch
    // is issued when its predecessor completes.
    issue();
  } else if (persistent_queue_.size() == 1 && persistent_ == nullptr) {
    // The persistent connection died on a timeout and the queue drained
    // before this fetch arrived: bring a fresh one up for it.
    reopen_persistent();
  }
}

// ---- resilience ----------------------------------------------------------

void FetchManager::arm_watchdog(Fetch& fetch) {
  if (!retry_.enabled) return;
  fetch.watchdog.cancel();
  fetch.progress_mark = fetch.connection != nullptr ? fetch.connection->client().total_read() : 0;
  Fetch* raw = &fetch;
  fetch.watchdog = sim_.schedule_after(retry_.request_timeout, [this, raw] { on_watchdog(*raw); });
}

void FetchManager::on_watchdog(Fetch& fetch) {
  if (stopped_ || fetch.done) return;
  const std::uint64_t read_now =
      fetch.connection != nullptr ? fetch.connection->client().total_read() : 0;
  if (read_now > fetch.progress_mark) {
    // Bytes flowed since the last check: healthy (or recovering) — re-arm.
    arm_watchdog(fetch);
    return;
  }
  // No progress for a whole timeout: the request is considered hung.
  ++timeouts_;
  if (ctr_timeouts_ != nullptr) ctr_timeouts_->inc();
  abandon_connection(fetch);
  if (fetch.attempts >= retry_.max_retries) {
    give_up(fetch);
  } else {
    schedule_retry(fetch);
  }
}

void FetchManager::abandon_connection(Fetch& fetch) {
  if (fetch.connection == nullptr) return;
  if (fetch.persistent && fetch.connection == persistent_) {
    // The persistent connection serves the whole queue; tear it down once.
    persistent_->client().set_on_readable({});
    persistent_->client().set_on_established({});
    if (persistent_server_) {
      persistent_server_->stop();
      retired_servers_.push_back(std::move(persistent_server_));
    }
    for (Fetch* queued : persistent_queue_) queued->connection = nullptr;
    persistent_ = nullptr;
  } else if (!fetch.persistent) {
    fetch.connection->client().set_on_readable({});
    fetch.connection->client().set_on_established({});
    if (fetch.server) {
      fetch.server->stop();
      retired_servers_.push_back(std::move(fetch.server));
    }
  }
  fetch.connection = nullptr;
}

void FetchManager::emit_retry_event(const Fetch& fetch, double backoff_s, bool gave_up) {
  if (obs::ObsContext* obs = sim_.obs(); obs != nullptr && obs->trace().active()) {
    obs::FetchRetry ev;
    ev.t_s = sim_.now().to_seconds();
    ev.attempt = fetch.attempts;
    ev.backoff_s = backoff_s;
    ev.remaining_bytes = fetch.expected_body - fetch.body_delivered;
    ev.gave_up = gave_up;
    obs->trace().emit(ev);
  }
}

void FetchManager::schedule_retry(Fetch& fetch) {
  ++fetch.attempts;
  ++retries_;
  if (ctr_retries_ != nullptr) ctr_retries_->inc();
  const sim::Duration backoff = retry_.backoff_for(fetch.attempts);
  emit_retry_event(fetch, backoff.to_seconds(), false);
  if (on_retry_) on_retry_(fetch.attempts);
  Fetch* raw = &fetch;
  sim_.schedule_after(backoff, [this, raw] {
    if (stopped_ || raw->done) return;
    if (raw->persistent) {
      reopen_persistent();
    } else {
      reissue_fresh(*raw);
    }
  });
}

/// Re-request the still-missing tail of `fetch` on a brand-new connection.
void FetchManager::reissue_fresh(Fetch& fetch) {
  // Per-attempt accounting restarts; the bytes already delivered to the
  // sink stay counted, only the owed remainder is re-requested.
  fetch.expected_body -= fetch.body_delivered;
  fetch.body_delivered = 0;
  fetch.head_seen = false;
  fetch.head_bytes = 0;
  fetch.read_before = 0;
  VSTREAM_INVARIANT(fetch.expected_body > 0, "retry of an already-complete fetch");

  auto& conn = fabric_.create_connection(client_options_, server_options_);
  ++connections_opened_;
  fetch.connection = &conn;
  fetch.server =
      std::make_unique<VideoStreamServer>(sim_, conn.server(), video_, ServerPacing::bulk());

  Fetch* raw = &fetch;
  const http::ByteRange range{0, fetch.expected_body - 1};
  conn.client().set_on_readable([this, raw] { on_readable(*raw); });
  conn.client().set_on_established([this, raw, range] {
    http::HttpClient client{raw->connection->client()};
    client.send_request(http::make_video_request(video_.id, range));
  });
  conn.open();
  arm_watchdog(fetch);
}

/// Bring up a fresh persistent connection and reissue the queue head's
/// remaining range on it; successors follow the normal completion chain.
void FetchManager::reopen_persistent() {
  if (stopped_ || persistent_queue_.empty() || persistent_ != nullptr) return;
  Fetch& front = *persistent_queue_.front();
  front.expected_body -= front.body_delivered;
  front.body_delivered = 0;
  front.head_seen = false;
  front.head_bytes = 0;
  VSTREAM_INVARIANT(front.expected_body > 0, "retry of an already-complete fetch");

  persistent_ = &fabric_.create_connection(client_options_, server_options_);
  ++connections_opened_;
  persistent_server_ = std::make_unique<VideoStreamServer>(sim_, persistent_->server(), video_,
                                                           ServerPacing::bulk());
  for (Fetch* queued : persistent_queue_) queued->connection = persistent_;

  Fetch* raw = &front;
  const http::ByteRange range{0, front.expected_body - 1};
  persistent_->client().set_on_readable([this] {
    if (!persistent_queue_.empty()) on_readable(*persistent_queue_.front());
  });
  persistent_->client().set_on_established([this, raw, range] {
    raw->read_before = persistent_->client().total_read();
    http::HttpClient client{persistent_->client()};
    client.send_request(http::make_video_request(video_.id, range));
  });
  persistent_->open();
  arm_watchdog(front);
}

/// Retry budget exhausted: complete the fetch short so the client moves on.
void FetchManager::give_up(Fetch& fetch) {
  ++abandoned_;
  emit_retry_event(fetch, 0.0, true);
  fetch.span.close("abandoned");
  finish(fetch);
}

/// Common completion: mark done, advance the persistent queue, fire on_done.
void FetchManager::finish(Fetch& fetch) {
  fetch.done = true;
  fetch.watchdog.cancel();
  // No-op after give_up already closed it as "abandoned".
  fetch.span.close(fetch.attempts == 0 ? "complete" : "complete_retried");
  if (fetch.persistent && !persistent_queue_.empty() && persistent_queue_.front() == &fetch) {
    persistent_queue_.erase(persistent_queue_.begin());
    if (!persistent_queue_.empty()) {
      if (persistent_ != nullptr) {
        Fetch* next = persistent_queue_.front();
        next->read_before = persistent_->client().total_read();
        http::HttpClient client{persistent_->client()};
        const http::ByteRange range{0, next->expected_body - 1};
        // Offsets are irrelevant to traffic shape; length drives bytes.
        client.send_request(http::make_video_request(video_.id, range));
        arm_watchdog(*next);
      } else {
        // The connection died with the queue non-empty: reconnect for the
        // successor.
        reopen_persistent();
      }
    }
  }
  if (fetch.on_done) fetch.on_done();
}

void FetchManager::on_readable(Fetch& fetch) {
  if (stopped_ || fetch.done || fetch.connection == nullptr) return;
  auto& endpoint = fetch.connection->client();
  auto result = endpoint.read(UINT64_MAX);
  for (auto& t : result.tags) {
    if (t.type() == typeid(http::HttpResponse)) {
      const auto head = std::any_cast<http::HttpResponse>(std::move(t));
      fetch.head_bytes = head.wire_size();
      fetch.head_seen = true;
      fetch.span.mark();  // first response byte of the (possibly retried) fetch
      // The server may clamp a range that overruns the resource (a 206 with
      // a shorter Content-Length than the request asked for). Believe the
      // head: without this the fetch waits forever for bytes the server
      // never owed — indistinguishable from a hang to the watchdog.
      if (head.content_length < fetch.expected_body) {
        fetch.expected_body = head.content_length;
      }
    }
  }
  if (!fetch.head_seen) return;

  const std::uint64_t stream_read = endpoint.total_read() - fetch.read_before;
  const std::uint64_t body_now =
      stream_read > fetch.head_bytes ? stream_read - fetch.head_bytes : 0;
  if (body_now > fetch.body_delivered) {
    const std::uint64_t delta = body_now - fetch.body_delivered;
    fetch.body_delivered = body_now;
    body_bytes_ += delta;
    if (fetch.sink) fetch.sink(delta);
  }
  // Requests on a shared connection are serialized, so the bytes attributed
  // to this fetch can never exceed the range it asked for.
  VSTREAM_INVARIANT(fetch.body_delivered <= fetch.expected_body,
                    "fetch accounting attributed more body bytes than the requested range");
  if (fetch.body_delivered >= fetch.expected_body) finish(fetch);
}

}  // namespace vstream::streaming
