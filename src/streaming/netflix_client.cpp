#include "streaming/netflix_client.hpp"

#include <algorithm>
#include <stdexcept>

#include "video/datasets.hpp"

namespace vstream::streaming {

NetflixClient::Profile NetflixClient::Profile::pc() {
  Profile p;
  p.name = "PC";
  p.ladder_bps = video::netflix_rate_ladder();
  p.buffering_fragment_s = 40.0;  // ~50 MB across the six-rate ladder
  p.steady_block_bytes = 2 * 1024 * 1024;
  p.accumulation_ratio = 1.2;
  p.fresh_connection_per_block = true;
  return p;
}

NetflixClient::Profile NetflixClient::Profile::ipad() {
  Profile p;
  p.name = "iPad";
  p.ladder_bps = video::netflix_ipad_ladder();
  p.buffering_fragment_s = 40.0;  // ~10 MB across the reduced ladder
  p.steady_block_bytes = 2 * 1024 * 1024;
  p.accumulation_ratio = 1.2;
  p.fresh_connection_per_block = true;
  return p;
}

NetflixClient::Profile NetflixClient::Profile::android() {
  Profile p;
  p.name = "Android";
  p.ladder_bps = video::netflix_rate_ladder();
  p.buffering_fragment_s = 33.0;  // ~40 MB
  p.steady_block_bytes = 5 * 1024 * 1024;  // long ON-OFF cycles
  p.accumulation_ratio = 1.2;
  p.fresh_connection_per_block = false;  // one reused connection
  return p;
}

NetflixClient::NetflixClient(sim::Simulator& sim, FetchManager& fetches,
                             const video::VideoMeta& video, Profile profile,
                             double access_bandwidth_bps, ByteSink sink)
    : sim_{sim},
      fetches_{fetches},
      video_{video},
      profile_{std::move(profile)},
      sink_{std::move(sink)},
      cycle_timer_{sim, sim::Duration::seconds(1.0), [this] { on_cycle(); }} {
  if (profile_.ladder_bps.empty()) throw std::invalid_argument{"NetflixClient: empty ladder"};

  // Adaptive selection: the highest ladder rate sustainable within the
  // allowed fraction of the access bandwidth, falling back to the lowest.
  selected_rate_bps_ = profile_.ladder_bps.front();
  for (const double r : profile_.ladder_bps) {
    if (r <= profile_.target_rate_fraction * access_bandwidth_bps) {
      selected_rate_bps_ = std::max(selected_rate_bps_, r);
    }
  }
  if (profile_.adaptive) {
    AdaptiveRateController::Config acfg;
    acfg.ladder_bps = profile_.ladder_bps;
    acfg.safety_factor = profile_.target_rate_fraction;
    controller_.emplace(acfg);
    controller_->seed(access_bandwidth_bps);
    selected_rate_bps_ = controller_->current_rate_bps();
  }
  update_cycle_period();
}

void NetflixClient::update_cycle_period() {
  const double steady_rate = profile_.accumulation_ratio * selected_rate_bps_;
  const double cycle_s = static_cast<double>(profile_.steady_block_bytes) * 8.0 / steady_rate;
  cycle_timer_.set_period(sim::Duration::seconds(cycle_s));
}

std::uint64_t NetflixClient::buffering_bytes_expected() const {
  double total = 0.0;
  for (const double r : profile_.ladder_bps) total += r / 8.0 * profile_.buffering_fragment_s;
  return static_cast<std::uint64_t>(total);
}

void NetflixClient::start() {
  // Buffering phase: fragments at every ladder rate, fetched in parallel
  // over separate connections.
  fragments_pending_ = profile_.ladder_bps.size();
  for (const double rate : profile_.ladder_bps) {
    const auto bytes =
        static_cast<std::uint64_t>(rate / 8.0 * profile_.buffering_fragment_s);
    const http::ByteRange range{offset_, offset_ + bytes - 1};
    offset_ += bytes;
    fetches_.fetch_range(
        range,
        [this](std::uint64_t n) {
          fetched_ += n;
          if (sink_) sink_(n);
        },
        [this] { on_fragment_done(); });
  }
}

void NetflixClient::stop() {
  stopped_ = true;
  cycle_timer_.stop();
  fetches_.stop();
}

void NetflixClient::on_fragment_done() {
  if (stopped_) return;
  if (--fragments_pending_ == 0) {
    steady_ = true;
    // Playback effectively begins once the buffering phase completes; the
    // fragment at the selected rate is what the player drains.
    playback_start_s_ = sim_.now().to_seconds();
    content_buffered_s_ = profile_.buffering_fragment_s;
    if (controller_.has_value() && playback_start_s_ > 0.0) {
      // Seed from the observed buffering-phase throughput.
      controller_->seed(static_cast<double>(fetched_) * 8.0 / playback_start_s_);
      selected_rate_bps_ = controller_->current_rate_bps();
      update_cycle_period();
    }
    cycle_timer_.start();
  }
}

void NetflixClient::on_cycle() { fetch_block(); }

void NetflixClient::on_fetch_retry(std::uint32_t /*attempt*/) {
  if (stopped_ || !controller_.has_value()) return;
  if (controller_->on_fault()) {
    selected_rate_bps_ = controller_->current_rate_bps();
    update_cycle_period();
  }
}

void NetflixClient::fetch_block() {
  if (stopped_ || block_in_flight_) return;
  const std::uint64_t video_bytes = video_.size_bytes_at(selected_rate_bps_);
  if (offset_ >= video_bytes) {
    cycle_timer_.stop();
    return;
  }
  const std::uint64_t want = std::min(profile_.steady_block_bytes, video_bytes - offset_);
  const http::ByteRange range{offset_, offset_ + want - 1};
  offset_ += want;
  block_in_flight_ = true;
  const ByteSink sink = [this](std::uint64_t n) {
    fetched_ += n;
    if (sink_) sink_(n);
  };
  const double started_s = sim_.now().to_seconds();
  const auto done = [this, want, started_s] {
    block_in_flight_ = false;
    const double now_s = sim_.now().to_seconds();
    content_buffered_s_ += static_cast<double>(want) * 8.0 / selected_rate_bps_;
    if (!controller_.has_value()) return;
    const double buffer_s =
        content_buffered_s_ - (playback_start_s_ >= 0.0 ? now_s - playback_start_s_ : 0.0);
    if (controller_->on_block(static_cast<double>(want), now_s - started_s, buffer_s)) {
      selected_rate_bps_ = controller_->current_rate_bps();
      update_cycle_period();
    }
  };
  if (profile_.fresh_connection_per_block) {
    fetches_.fetch_range(range, sink, done);
  } else {
    fetches_.fetch_range_persistent(range, sink, done);
  }
}

}  // namespace vstream::streaming
