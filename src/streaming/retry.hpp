// Request-level retry policy for the streaming fetch path.
//
// Under fault injection (net/dynamics.hpp) a TCP connection can go silent
// for the whole length of a blackout; the transport keeps retransmitting on
// its RTO schedule forever, so recovery has to come from the application.
// `RetryPolicy` bounds that recovery: a no-progress watchdog per fetch, a
// bounded exponential backoff between attempts, and a retry budget after
// which the fetch is abandoned (the client moves on instead of hanging).
// All timing is sim::Duration on the simulation clock — never wall-clock —
// so a faulted run stays digest-deterministic.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/time.hpp"

namespace vstream::streaming {

struct RetryPolicy {
  /// Master switch; disabled reproduces the pre-resilience behaviour
  /// (a fetch stuck in a blackout stays stuck).
  bool enabled{true};
  /// A fetch that makes no read progress for this long times out and is
  /// retried on a fresh connection. Must comfortably exceed the server's
  /// pacing gaps, or healthy OFF periods would count as hangs.
  sim::Duration request_timeout{sim::Duration::seconds(8.0)};
  /// Backoff before retry k (1-based) is
  /// min(backoff_initial * backoff_multiplier^(k-1), backoff_max).
  sim::Duration backoff_initial{sim::Duration::millis(500)};
  double backoff_multiplier{2.0};
  sim::Duration backoff_max{sim::Duration::seconds(8.0)};
  /// Retries per fetch before giving up and completing it short.
  std::uint32_t max_retries{6};

  [[nodiscard]] sim::Duration backoff_for(std::uint32_t retry) const {
    sim::Duration d = backoff_initial;
    for (std::uint32_t i = 1; i < retry && d < backoff_max; ++i) d = d * backoff_multiplier;
    return d < backoff_max ? d : backoff_max;
  }

  void validate() const {
    if (request_timeout <= sim::Duration::zero()) {
      throw std::invalid_argument{"RetryPolicy: request timeout must be positive"};
    }
    if (backoff_initial <= sim::Duration::zero() || backoff_max < backoff_initial) {
      throw std::invalid_argument{"RetryPolicy: backoff bounds out of order"};
    }
    if (backoff_multiplier < 1.0) {
      throw std::invalid_argument{"RetryPolicy: backoff multiplier below 1"};
    }
  }

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

}  // namespace vstream::streaming
