#include "streaming/scenarios.hpp"

#include "check/digest.hpp"

namespace vstream::streaming {

namespace {

SessionConfig base_config(Service service, video::Container container, Application application,
                          net::Vantage vantage, double capture_duration_s) {
  SessionConfig cfg;
  cfg.service = service;
  cfg.container = container;
  cfg.application = application;
  cfg.network = net::profile_for(vantage);
  cfg.video.id = "scenario";
  cfg.video.duration_s = 300.0;
  cfg.video.encoding_bps = 1e6;
  cfg.video.resolution = video::Resolution::k360p;
  cfg.video.container = container;
  cfg.capture_duration_s = capture_duration_s;
  cfg.seed = 20110'607;  // fixed catalog seed (CoNEXT 2011 submission season)
  return cfg;
}

/// Retry policy tuned for the fault catalog: tight enough that a blackout a
/// few seconds long triggers application-level recovery inside even a short
/// test capture, with enough budget to ride out the longest window below.
RetryPolicy fault_retry_policy() {
  RetryPolicy policy;
  policy.request_timeout = sim::Duration::seconds(2.0);
  policy.backoff_initial = sim::Duration::millis(250);
  policy.backoff_max = sim::Duration::seconds(2.0);
  policy.max_retries = 12;
  return policy;
}

}  // namespace

std::vector<NamedScenario> canonical_scenarios(double capture_duration_s) {
  using video::Container;
  std::vector<NamedScenario> out;
  const auto add = [&](std::string name, SessionConfig cfg) {
    out.push_back(NamedScenario{std::move(name), std::move(cfg)});
  };

  // YouTube, every PC/mobile application the paper measured (Table 1).
  add("youtube-flash-ie-research",
      base_config(Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                  net::Vantage::kResearch, capture_duration_s));
  add("youtube-flash-firefox-residence",
      base_config(Service::kYouTube, Container::kFlash, Application::kFirefox,
                  net::Vantage::kResidence, capture_duration_s));
  add("youtube-flashhd-chrome-academic",
      base_config(Service::kYouTube, Container::kFlashHd, Application::kChrome,
                  net::Vantage::kAcademic, capture_duration_s));
  add("youtube-html5-ie-home",
      base_config(Service::kYouTube, Container::kHtml5, Application::kInternetExplorer,
                  net::Vantage::kHome, capture_duration_s));
  add("youtube-html5-firefox-research",
      base_config(Service::kYouTube, Container::kHtml5, Application::kFirefox,
                  net::Vantage::kResearch, capture_duration_s));
  add("youtube-html5-chrome-residence",
      base_config(Service::kYouTube, Container::kHtml5, Application::kChrome,
                  net::Vantage::kResidence, capture_duration_s));
  add("youtube-html5-ipad-home",
      base_config(Service::kYouTube, Container::kHtml5, Application::kIosNative,
                  net::Vantage::kHome, capture_duration_s));
  add("youtube-html5-android-residence",
      base_config(Service::kYouTube, Container::kHtml5, Application::kAndroidNative,
                  net::Vantage::kResidence, capture_duration_s));

  // Netflix: Silverlight on PCs, the native apps on mobiles.
  add("netflix-silverlight-pc-research",
      base_config(Service::kNetflix, Container::kSilverlight, Application::kInternetExplorer,
                  net::Vantage::kResearch, capture_duration_s));
  add("netflix-silverlight-ipad-home",
      base_config(Service::kNetflix, Container::kSilverlight, Application::kIosNative,
                  net::Vantage::kHome, capture_duration_s));
  add("netflix-silverlight-android-residence",
      base_config(Service::kNetflix, Container::kSilverlight, Application::kAndroidNative,
                  net::Vantage::kResidence, capture_duration_s));

  // Behavioural variants: viewer interruption (Section 6.2) and the RFC
  // 5681 idle-restart ablation (Fig 9).
  {
    auto cfg = base_config(Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                           net::Vantage::kResidence, capture_duration_s);
    cfg.watch_fraction = 0.4;
    add("youtube-flash-ie-interrupted", cfg);
  }
  {
    auto cfg = base_config(Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                           net::Vantage::kResearch, capture_duration_s);
    cfg.server_idle_cwnd_reset = true;
    add("youtube-flash-ie-idle-restart", cfg);
  }
  return out;
}

std::vector<NamedScenario> fault_scenarios(double capture_duration_s) {
  using video::Container;
  std::vector<NamedScenario> out;
  const auto at = [&](double fraction) {
    return sim::SimTime::from_seconds(capture_duration_s * fraction);
  };
  const auto lasting = [&](double fraction) {
    return sim::Duration::seconds(capture_duration_s * fraction);
  };

  // Mid-download blackout against the ranged iPad fetcher: the watchdog
  // fires, retries back off through the outage, and the player records a
  // rebuffer once bytes flow again. The early start keeps the playout
  // buffer shallow enough that the blackout actually drains it.
  {
    auto cfg = base_config(Service::kYouTube, Container::kHtml5, Application::kIosNative,
                           net::Vantage::kHome, capture_duration_s);
    cfg.fetch_retry = fault_retry_policy();
    // A higher encoding rate keeps the iPad's 10 MB initial buffer short in
    // playback seconds, so the blackout can actually drain it.
    cfg.video.encoding_bps = 4e6;
    cfg.impairments.blackout(at(0.10), lasting(0.35));
    out.push_back(NamedScenario{"fault-blackout-youtube-ipad-home", std::move(cfg)});
  }

  // Gilbert-Elliott burst-loss window layered over the Residence profile's
  // base loss, with adaptive bitrate on: the retry callback feeds the rate
  // controller, so sustained loss shows up as a downswitch, not a hang.
  {
    auto cfg = base_config(Service::kNetflix, Container::kSilverlight,
                           Application::kInternetExplorer, net::Vantage::kResidence,
                           capture_duration_s);
    cfg.fetch_retry = fault_retry_policy();
    cfg.adaptive_bitrate = true;
    cfg.impairments.burst_loss(at(0.15), lasting(0.30), /*rate=*/0.12, /*burst_len=*/5.0);
    out.push_back(NamedScenario{"fault-burstloss-netflix-pc-residence", std::move(cfg)});
  }

  // Congestion onset as a rate halving across the middle of the capture —
  // the persistent-connection Android client keeps its one connection and
  // simply slows; recovery is transport-level, resilience stats stay near
  // zero. This is the "impairment without drama" control scenario.
  {
    auto cfg = base_config(Service::kNetflix, Container::kSilverlight,
                           Application::kAndroidNative, net::Vantage::kResidence,
                           capture_duration_s);
    cfg.fetch_retry = fault_retry_policy();
    cfg.impairments.rate_scale(at(0.20), lasting(0.40), /*factor=*/0.5);
    out.push_back(NamedScenario{"fault-ratehalving-netflix-android-residence", std::move(cfg)});
  }

  // Classic link flap against the greedy Flash download: the single
  // connection rides the outages on TCP's own RTO schedule (no fetch-level
  // watchdog drama), exercising blackout transitions without FetchManager.
  {
    auto cfg = base_config(Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                           net::Vantage::kResearch, capture_duration_s);
    cfg.impairments.link_flap(at(0.20), /*down=*/lasting(0.04), /*up=*/lasting(0.08),
                              /*count=*/3);
    out.push_back(NamedScenario{"fault-linkflap-youtube-flash-research", std::move(cfg)});
  }

  // Delay spike plus a short blackout of a different kind overlapping it:
  // validates that mixed-kind overlap composes (bufferbloat during an
  // outage window edge) and stays deterministic.
  {
    auto cfg = base_config(Service::kYouTube, Container::kHtml5, Application::kChrome,
                           net::Vantage::kAcademic, capture_duration_s);
    cfg.impairments.delay_spike(at(0.25), lasting(0.25), sim::Duration::millis(150))
        .blackout(at(0.30), lasting(0.05));
    out.push_back(NamedScenario{"fault-delayspike-youtube-chrome-academic", std::move(cfg)});
  }

  return out;
}

void fold_outcome(check::StateDigest& digest, const SessionResult& result) {
  digest.mix(result.bytes_downloaded);
  digest.mix(result.sim_events);
  digest.mix(static_cast<std::uint64_t>(result.connections));
  digest.mix(result.player.downloaded_bytes);
  digest.mix(result.player.consumed_bytes);
  // Recovery dynamics are part of the outcome under fault injection: two
  // runs that downloaded the same bytes via different retry/rebuffer paths
  // must not fingerprint equal.
  digest.mix(static_cast<std::uint64_t>(result.resilience.fetch_retries));
  digest.mix(static_cast<std::uint64_t>(result.resilience.rebuffer_count));
  digest.mix(result.resilience.fault_drops);
}

RunFingerprint fingerprint_session(const SessionConfig& config, obs::TraceSink* sink) {
  check::StateDigest digest;
  SessionConfig cfg = config;
  cfg.digest = &digest;
  if (sink != nullptr) cfg.trace_sink = sink;
  const SessionResult result = run_session(cfg);

  RunFingerprint fp;
  fp.sim_events = result.sim_events;
  fp.bytes_downloaded = result.bytes_downloaded;
  // Fold the headline outcome in after the run, so a divergence that the
  // event-order stream somehow missed still flips the fingerprint.
  fold_outcome(digest, result);
  fp.digest = digest.value();
  fp.words_mixed = digest.words_mixed();
  return fp;
}

}  // namespace vstream::streaming
