#include "streaming/scenarios.hpp"

#include "check/digest.hpp"

namespace vstream::streaming {

namespace {

SessionConfig base_config(Service service, video::Container container, Application application,
                          net::Vantage vantage, double capture_duration_s) {
  SessionConfig cfg;
  cfg.service = service;
  cfg.container = container;
  cfg.application = application;
  cfg.network = net::profile_for(vantage);
  cfg.video.id = "scenario";
  cfg.video.duration_s = 300.0;
  cfg.video.encoding_bps = 1e6;
  cfg.video.resolution = video::Resolution::k360p;
  cfg.video.container = container;
  cfg.capture_duration_s = capture_duration_s;
  cfg.seed = 20110'607;  // fixed catalog seed (CoNEXT 2011 submission season)
  return cfg;
}

}  // namespace

std::vector<NamedScenario> canonical_scenarios(double capture_duration_s) {
  using video::Container;
  std::vector<NamedScenario> out;
  const auto add = [&](std::string name, SessionConfig cfg) {
    out.push_back(NamedScenario{std::move(name), std::move(cfg)});
  };

  // YouTube, every PC/mobile application the paper measured (Table 1).
  add("youtube-flash-ie-research",
      base_config(Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                  net::Vantage::kResearch, capture_duration_s));
  add("youtube-flash-firefox-residence",
      base_config(Service::kYouTube, Container::kFlash, Application::kFirefox,
                  net::Vantage::kResidence, capture_duration_s));
  add("youtube-flashhd-chrome-academic",
      base_config(Service::kYouTube, Container::kFlashHd, Application::kChrome,
                  net::Vantage::kAcademic, capture_duration_s));
  add("youtube-html5-ie-home",
      base_config(Service::kYouTube, Container::kHtml5, Application::kInternetExplorer,
                  net::Vantage::kHome, capture_duration_s));
  add("youtube-html5-firefox-research",
      base_config(Service::kYouTube, Container::kHtml5, Application::kFirefox,
                  net::Vantage::kResearch, capture_duration_s));
  add("youtube-html5-chrome-residence",
      base_config(Service::kYouTube, Container::kHtml5, Application::kChrome,
                  net::Vantage::kResidence, capture_duration_s));
  add("youtube-html5-ipad-home",
      base_config(Service::kYouTube, Container::kHtml5, Application::kIosNative,
                  net::Vantage::kHome, capture_duration_s));
  add("youtube-html5-android-residence",
      base_config(Service::kYouTube, Container::kHtml5, Application::kAndroidNative,
                  net::Vantage::kResidence, capture_duration_s));

  // Netflix: Silverlight on PCs, the native apps on mobiles.
  add("netflix-silverlight-pc-research",
      base_config(Service::kNetflix, Container::kSilverlight, Application::kInternetExplorer,
                  net::Vantage::kResearch, capture_duration_s));
  add("netflix-silverlight-ipad-home",
      base_config(Service::kNetflix, Container::kSilverlight, Application::kIosNative,
                  net::Vantage::kHome, capture_duration_s));
  add("netflix-silverlight-android-residence",
      base_config(Service::kNetflix, Container::kSilverlight, Application::kAndroidNative,
                  net::Vantage::kResidence, capture_duration_s));

  // Behavioural variants: viewer interruption (Section 6.2) and the RFC
  // 5681 idle-restart ablation (Fig 9).
  {
    auto cfg = base_config(Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                           net::Vantage::kResidence, capture_duration_s);
    cfg.watch_fraction = 0.4;
    add("youtube-flash-ie-interrupted", cfg);
  }
  {
    auto cfg = base_config(Service::kYouTube, Container::kFlash, Application::kInternetExplorer,
                           net::Vantage::kResearch, capture_duration_s);
    cfg.server_idle_cwnd_reset = true;
    add("youtube-flash-ie-idle-restart", cfg);
  }
  return out;
}

RunFingerprint fingerprint_session(const SessionConfig& config) {
  check::StateDigest digest;
  SessionConfig cfg = config;
  cfg.digest = &digest;
  const SessionResult result = run_session(cfg);

  RunFingerprint fp;
  fp.sim_events = result.sim_events;
  fp.bytes_downloaded = result.bytes_downloaded;
  // Fold the headline outcome in after the run, so a divergence that the
  // event-order stream somehow missed still flips the fingerprint.
  digest.mix(result.bytes_downloaded);
  digest.mix(result.sim_events);
  digest.mix(static_cast<std::uint64_t>(result.connections));
  digest.mix(result.player.downloaded_bytes);
  digest.mix(result.player.consumed_bytes);
  fp.digest = digest.value();
  fp.words_mixed = digest.words_mixed();
  return fp;
}

}  // namespace vstream::streaming
