#include "streaming/topology.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <stdexcept>

#include "check/digest.hpp"
#include "net/path.hpp"
#include "net/path_builder.hpp"
#include "obs/context.hpp"
#include "sim/periodic_timer.hpp"
#include "streaming/session_instance.hpp"
#include "tcp/connection.hpp"

namespace vstream::streaming {

void ArrivalSchedule::validate() const {
  if (start_s < 0.0) {
    throw std::invalid_argument{"ArrivalSchedule: start must be non-negative"};
  }
  switch (kind) {
    case Kind::kImmediate:
      break;
    case Kind::kPoisson:
      if (rate_per_s <= 0.0) {
        throw std::invalid_argument{"ArrivalSchedule: Poisson rate must be positive"};
      }
      break;
    case Kind::kFlashCrowd:
      if (spread_s < 0.0) {
        throw std::invalid_argument{"ArrivalSchedule: flash-crowd spread must be non-negative"};
      }
      break;
    case Kind::kDiurnal:
      if (rate_per_s <= 0.0) {
        throw std::invalid_argument{"ArrivalSchedule: diurnal base rate must be positive"};
      }
      if (period_s <= 0.0) {
        throw std::invalid_argument{"ArrivalSchedule: diurnal period must be positive"};
      }
      if (depth < 0.0 || depth > 1.0) {
        throw std::invalid_argument{"ArrivalSchedule: diurnal depth outside [0,1]"};
      }
      break;
  }
}

std::vector<double> generate_arrivals(const ArrivalSchedule& schedule, std::size_t count,
                                      double horizon_s, sim::Rng& rng) {
  schedule.validate();
  std::vector<double> arrivals;
  switch (schedule.kind) {
    case ArrivalSchedule::Kind::kImmediate: {
      if (schedule.start_s <= horizon_s) arrivals.assign(count, schedule.start_s);
      break;
    }
    case ArrivalSchedule::Kind::kPoisson: {
      double t = schedule.start_s;
      while (arrivals.size() < count) {
        t += rng.exponential(schedule.rate_per_s);
        if (t > horizon_s) break;
        arrivals.push_back(t);
      }
      break;
    }
    case ArrivalSchedule::Kind::kFlashCrowd: {
      for (std::size_t i = 0; i < count; ++i) {
        const double t = schedule.start_s + rng.uniform(0.0, schedule.spread_s);
        if (t <= horizon_s) arrivals.push_back(t);
      }
      // Uniform draws land unordered; the world needs time-sorted arrivals.
      std::sort(arrivals.begin(), arrivals.end());
      break;
    }
    case ArrivalSchedule::Kind::kDiurnal: {
      // Thinning against the peak intensity keeps the process exact while
      // every draw still comes from the one tagged stream.
      const double peak = schedule.rate_per_s * (1.0 + schedule.depth);
      double t = schedule.start_s;
      while (arrivals.size() < count) {
        t += rng.exponential(peak);
        if (t > horizon_s) break;
        const double intensity =
            schedule.rate_per_s *
            (1.0 + schedule.depth * std::sin(2.0 * std::numbers::pi * t / schedule.period_s));
        if (rng.uniform(0.0, peak) <= intensity) arrivals.push_back(t);
      }
      break;
    }
  }
  return arrivals;
}

void TopologyConfig::validate() const {
  if (sessions == 0) {
    throw std::invalid_argument{"TopologyConfig: at least one session required"};
  }
  if (horizon_s <= 0.0) {
    throw std::invalid_argument{"TopologyConfig: horizon must be positive"};
  }
  if (sample_window_s <= 0.0) {
    throw std::invalid_argument{"TopologyConfig: sample window must be positive"};
  }
  if (warmup_s < 0.0 || warmup_s >= horizon_s) {
    throw std::invalid_argument{"TopologyConfig: warmup must lie inside [0, horizon)"};
  }
  SessionConfig probe = session;
  probe.topology_attached = true;
  probe.validate();
  arrivals.validate();
  bottleneck.validate();
  bottleneck_impairments.validate();
}

namespace {

/// One admitted session: its access leg, connection fabric, application
/// machinery, and the pre-drawn config/rng it started from.
struct Slot {
  SessionConfig cfg;
  sim::Rng rng;
  double at_s{0.0};
  std::unique_ptr<net::Path> leg;
  std::unique_ptr<tcp::Fabric> fabric;
  std::unique_ptr<SessionInstance> instance;

  Slot(SessionConfig config, sim::Rng session_rng, double arrival_s)
      : cfg{std::move(config)}, rng{std::move(session_rng)}, at_s{arrival_s} {}
};

/// World-lifetime state shared by the scheduled arrival callbacks. Events
/// capture {Runner*, index} — comfortably inside the simulator's SBO
/// callback budget.
struct Runner {
  sim::Simulator& sim;
  net::SharedBottleneck& bottleneck;
  std::vector<Slot>& slots;
  stats::WindowedRate& sampler;
  std::size_t started{0};
  std::size_t finished{0};
  std::size_t interrupted{0};
  std::size_t active{0};

  void start_session(std::size_t k) {
    Slot& slot = slots[k];
    slot.leg = net::PathBuilder{sim, slot.cfg.network, slot.rng}.build();
    const std::uint32_t client = bottleneck.attach(*slot.leg);
    slot.fabric = std::make_unique<tcp::Fabric>(
        sim, *slot.leg, net::SharedBottleneck::first_connection_id(client));
    slot.instance = std::make_unique<SessionInstance>(sim, *slot.fabric, slot.cfg, slot.rng);
    slot.instance->set_on_quiesce([this, k] { retire_session(k); });
    // R(t) samples the TCP-deduped application delivery stream: the paper's
    // aggregate is useful bits, and counting at the bottleneck would tally
    // retransmitted bytes twice whenever an access leg sheds a slow-start
    // overshoot.
    slot.instance->set_byte_tap([this](std::uint64_t n) {
      sampler.on_bytes(sim.now().to_seconds(), n);
    });
    ++started;
    ++active;
  }

  void retire_session(std::size_t k) {
    Slot& slot = slots[k];
    slot.instance->stop_auxiliary();
    if (slot.instance->player().stats().interrupted) {
      ++interrupted;
    } else {
      ++finished;
    }
    --active;
  }
};

}  // namespace

TopologyResult run_topology(const TopologyConfig& config) {
  config.validate();

  sim::Simulator sim{config.arena};
  obs::ObsContext obs;
  sim.set_obs(&obs);
  if (config.digest != nullptr) sim.set_digest(config.digest);
  sim::Rng root{config.seed};

  net::SharedBottleneck bottleneck{sim, config.bottleneck, root};
  if (!config.bottleneck_impairments.empty()) {
    bottleneck.link().set_impairments(config.bottleneck_impairments);
  }

  std::unique_ptr<net::CrossTraffic> cross;
  if (config.cross_traffic.has_value()) {
    net::CrossTraffic::Config cross_cfg = *config.cross_traffic;
    cross_cfg.connection_id = net::SharedBottleneck::kForeignId;
    cross = std::make_unique<net::CrossTraffic>(sim, bottleneck.link(), cross_cfg,
                                                root.fork("cross-traffic"));
    cross->start();
  }

  obs::SimLoopMonitor loop_monitor{sim, sim::Duration::seconds(1.0)};
  loop_monitor.start();

  // Arrival process, then per-session streams: every session forks off one
  // parent in arrival order, and its workload draws (customize) come from
  // its own stream — so adding a session never perturbs another's draws.
  sim::Rng arrival_rng = root.fork("arrivals");
  const std::vector<double> arrivals =
      generate_arrivals(config.arrivals, config.sessions, config.horizon_s, arrival_rng);

  sim::Rng session_parent = root.fork("sessions");
  std::vector<Slot> slots;
  slots.reserve(arrivals.size());
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    sim::Rng session_rng = session_parent.fork("session");
    SessionConfig cfg = config.session;
    cfg.topology_attached = true;
    cfg.seed = session_rng.seed();
    if (config.customize) config.customize(k, session_rng, cfg);
    cfg.validate();
    slots.emplace_back(std::move(cfg), std::move(session_rng), arrivals[k]);
  }

  // R(t): video bytes credited to fixed windows as the client applications
  // read them. Headers stay out (Eq. 3's E[e]E[L] is application bytes) and
  // so does auxiliary-host traffic — the same §2 filter the paper applied
  // to its captures.
  stats::WindowedRate sampler{config.sample_window_s, config.warmup_s};

  Runner runner{.sim = sim, .bottleneck = bottleneck, .slots = slots, .sampler = sampler};
  for (std::size_t k = 0; k < slots.size(); ++k) {
    Runner* r = &runner;
    sim.schedule_at(sim::SimTime::from_seconds(slots[k].at_s), [r, k] { r->start_session(k); });
  }

  // Bottleneck accounting: payload that crossed the shared link, split into
  // video-session traffic (retransmissions included — this is the wire
  // view, not the R(t) basis) and foreign cross traffic.
  std::uint64_t video_payload_bytes = 0;
  std::uint64_t cross_payload_bytes = 0;
  bottleneck.link().set_tap(
      [&video_payload_bytes, &cross_payload_bytes, &bottleneck](
          sim::SimTime, const net::TcpSegment& seg, net::LinkEvent event) {
        if (event != net::LinkEvent::kDeliver) return;
        if (net::SharedBottleneck::client_of(seg.connection_id) >= bottleneck.legs()) {
          cross_payload_bytes += seg.payload_bytes;
          return;
        }
        if (seg.host != 0) return;
        video_payload_bytes += seg.payload_bytes;
      });

  // Window clock: closes silent R(t) windows and samples the concurrency
  // series on the same grid.
  stats::WindowStats concurrency;
  sim::PeriodicTimer window_clock{
      sim, sim::Duration::seconds(config.sample_window_s), [&] {
        const double now_s = sim.now().to_seconds();
        sampler.advance_to(now_s);
        if (now_s > config.warmup_s) concurrency.add(static_cast<double>(runner.active));
      }};
  window_clock.start();

  sim.run_until(sim::SimTime::from_seconds(config.horizon_s));

  window_clock.stop();
  loop_monitor.stop();
  if (cross) cross->stop();
  sampler.advance_to(config.horizon_s);

  TopologyResult result;
  result.sessions_started = runner.started;
  result.sessions_finished = runner.finished;
  result.sessions_interrupted = runner.interrupted;
  result.sessions_active_at_end = runner.active;
  for (Slot& slot : slots) {
    if (!slot.instance) continue;
    slot.instance->stop_auxiliary();
    const SessionOutcome outcome = slot.instance->finalize();
    result.connections += outcome.connections;
    result.bytes_downloaded += outcome.bytes_downloaded;
    if (outcome.player.interrupted) result.wasted_bytes += outcome.player.unused_bytes();
    result.sum_encoding_bps += outcome.encoding_bps_true;
    result.sum_duration_s += slot.cfg.video.duration_s;
    const double goodput = outcome.goodput_bps();
    if (goodput > 0.0) {
      result.sum_goodput_bps += goodput;
      ++result.goodput_samples;
    }
  }

  result.video_payload_bytes = video_payload_bytes;
  result.cross_traffic_bytes = cross_payload_bytes;
  const net::Link::Counters& bn = bottleneck.link().counters();
  result.bottleneck_wire_bytes = bn.bytes_delivered;
  result.bottleneck_dropped_queue = bn.dropped_queue;
  result.bottleneck_dropped_loss = bn.dropped_loss;
  result.aggregate = sampler.windows();
  result.concurrency = concurrency;
  result.realized_arrival_rate_per_s =
      static_cast<double>(runner.started) / config.horizon_s;
  result.sim_events = sim.events_processed();
  result.sim_max_events_pending = sim.max_events_pending();
  return result;
}

void fold_topology_outcome(check::StateDigest& digest, const TopologyResult& result) {
  digest.mix(static_cast<std::uint64_t>(result.sessions_started));
  digest.mix(static_cast<std::uint64_t>(result.sessions_finished));
  digest.mix(static_cast<std::uint64_t>(result.sessions_interrupted));
  digest.mix(static_cast<std::uint64_t>(result.sessions_active_at_end));
  digest.mix(static_cast<std::uint64_t>(result.connections));
  digest.mix(result.bytes_downloaded);
  digest.mix(result.wasted_bytes);
  digest.mix(result.video_payload_bytes);
  digest.mix(result.cross_traffic_bytes);
  digest.mix(result.bottleneck_wire_bytes);
  digest.mix(result.bottleneck_dropped_queue);
  digest.mix(result.bottleneck_dropped_loss);
  digest.mix(result.aggregate.count);
  digest.mix(result.sim_events);
}

TopologyFingerprint fingerprint_topology(const TopologyConfig& config) {
  check::StateDigest digest;
  TopologyConfig cfg = config;
  cfg.digest = &digest;
  const TopologyResult result = run_topology(cfg);

  TopologyFingerprint fp;
  fp.sim_events = result.sim_events;
  fp.bytes_downloaded = result.bytes_downloaded;
  fold_topology_outcome(digest, result);
  fp.digest = digest.value();
  fp.words_mixed = digest.words_mixed();
  return fp;
}

}  // namespace vstream::streaming
