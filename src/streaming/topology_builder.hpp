// Fluent construction of multi-session topologies — and the shared
// session-knob mixin that SessionBuilder (the N=1 case) rebases on.
//
// `SessionConfigurator<Derived>` owns the one authoritative set of
// chainable SessionConfig setters. `SessionBuilder` inherits them to
// configure a private-world run; `TopologyBuilder` inherits the same
// setters to configure the *session template* of an N-session world, then
// adds the topology-level knobs (population size, arrival process, shared
// bottleneck, sampling grid). Both funnel through the same
// `SessionConfig::validate()` — there is no duplicated validation, and a
// knob that is private-path-only (bandwidth_jitter, per-session capture,
// per-session impairments) fails `TopologyBuilder::build()` with the
// validate() diagnostic explaining the topology-level replacement.
//
//   auto result = streaming::TopologyBuilder{}
//                     .service(streaming::Service::kYouTube)
//                     .container(video::Container::kFlash)
//                     .vantage(net::Vantage::kResidence)
//                     .video(meta)
//                     .sessions(10'000)
//                     .workload(streaming::WorkloadBuilder{}
//                                   .poisson(100.0)
//                                   .customize(vary_video)
//                                   .build())
//                     .bottleneck_rate_bps(1e9)
//                     .horizon_s(300.0)
//                     .warmup_s(60.0)
//                     .run();
#pragma once

#include "net/profile.hpp"
#include "streaming/topology.hpp"

namespace vstream::streaming {

/// CRTP mixin: every chainable SessionConfig knob, stated once. `Derived`
/// decides what "build" means (a validated SessionConfig, or the session
/// template of a TopologyConfig).
template <typename Derived>
class SessionConfigurator {
 public:
  SessionConfigurator() = default;
  explicit SessionConfigurator(SessionConfig base) : cfg_{std::move(base)} {}

  Derived& service(Service s) {
    cfg_.service = s;
    return self();
  }
  Derived& container(video::Container c) {
    cfg_.container = c;
    return self();
  }
  Derived& application(Application a) {
    cfg_.application = a;
    return self();
  }
  Derived& network(net::NetworkProfile p) {
    cfg_.network = std::move(p);
    return self();
  }
  /// Convenience: the paper's four capture vantages (Table 2).
  Derived& vantage(net::Vantage v) { return network(net::profile_for(v)); }
  Derived& video(video::VideoMeta v) {
    cfg_.video = std::move(v);
    return self();
  }
  Derived& capture_duration_s(double s) {
    cfg_.capture_duration_s = s;
    return self();
  }
  /// Viewer abandons after this fraction of the video (beta, §6.2).
  Derived& watch_fraction(double f) {
    cfg_.watch_fraction = f;
    return self();
  }
  Derived& watch_to_end() {
    cfg_.watch_fraction.reset();
    return self();
  }
  Derived& seed(std::uint64_t s) {
    cfg_.seed = s;
    return self();
  }
  Derived& server_idle_cwnd_reset(bool on = true) {
    cfg_.server_idle_cwnd_reset = on;
    return self();
  }
  Derived& bandwidth_jitter(double j) {
    cfg_.bandwidth_jitter = j;
    return self();
  }
  Derived& auxiliary_traffic(bool on = true) {
    cfg_.auxiliary_traffic = on;
    return self();
  }
  Derived& trace_sink(obs::TraceSink* sink) {
    cfg_.trace_sink = sink;
    return self();
  }
  Derived& digest(check::StateDigest* d) {
    cfg_.digest = d;
    return self();
  }
  /// Per-world allocator for the simulator's event machinery (non-owning;
  /// single-threaded — never share between concurrent sessions).
  Derived& arena(sim::ArenaResource* a) {
    cfg_.arena = a;
    return self();
  }
  Derived& keep_full_trace(bool on = true) {
    cfg_.keep_full_trace = on;
    return self();
  }
  Derived& store_trace(bool on = true) {
    cfg_.store_trace = on;
    return self();
  }
  Derived& streaming_report(bool on = true) {
    cfg_.streaming_report = on;
    return self();
  }
  /// Fault injection on the downstream access link (net/dynamics.hpp).
  Derived& impairments(net::ImpairmentSchedule schedule) {
    cfg_.impairments = std::move(schedule);
    return self();
  }
  Derived& fetch_retry(RetryPolicy policy) {
    cfg_.fetch_retry = policy;
    return self();
  }
  Derived& adaptive_bitrate(bool on = true) {
    cfg_.adaptive_bitrate = on;
    return self();
  }

 protected:
  SessionConfig cfg_;

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

/// Fluent viewer populations: an arrival process plus the per-session
/// variation hook, packaged for `TopologyBuilder::workload`.
class WorkloadBuilder {
 public:
  WorkloadBuilder& immediate(double start_s = 0.0) {
    w_.arrivals.kind = ArrivalSchedule::Kind::kImmediate;
    w_.arrivals.start_s = start_s;
    return *this;
  }
  /// Homogeneous Poisson churn — the model's lambda (Eq. 3/4).
  WorkloadBuilder& poisson(double rate_per_s, double start_s = 0.0) {
    w_.arrivals.kind = ArrivalSchedule::Kind::kPoisson;
    w_.arrivals.rate_per_s = rate_per_s;
    w_.arrivals.start_s = start_s;
    return *this;
  }
  /// Every viewer lands uniformly inside [start_s, start_s + spread_s).
  WorkloadBuilder& flash_crowd(double spread_s, double start_s = 0.0) {
    w_.arrivals.kind = ArrivalSchedule::Kind::kFlashCrowd;
    w_.arrivals.spread_s = spread_s;
    w_.arrivals.start_s = start_s;
    return *this;
  }
  /// Poisson with sinusoidal intensity: rate*(1 ± depth) over period_s.
  WorkloadBuilder& diurnal(double rate_per_s, double period_s, double depth = 0.5) {
    w_.arrivals.kind = ArrivalSchedule::Kind::kDiurnal;
    w_.arrivals.rate_per_s = rate_per_s;
    w_.arrivals.period_s = period_s;
    w_.arrivals.depth = depth;
    return *this;
  }
  WorkloadBuilder& arrivals(ArrivalSchedule schedule) {
    w_.arrivals = schedule;
    return *this;
  }
  /// Per-session variation (encoding rate, duration, watch fraction…),
  /// drawn only from the passed session rng.
  WorkloadBuilder& customize(std::function<void(std::size_t, sim::Rng&, SessionConfig&)> fn) {
    w_.customize = std::move(fn);
    return *this;
  }

  [[nodiscard]] Workload build() const {
    w_.arrivals.validate();
    return w_;
  }

 private:
  Workload w_;
};

/// Fluent construction of an N-session shared-bottleneck world. The mixin's
/// setters shape the session *template*; the methods here shape the world.
/// `seed`/`digest`/`arena` are shadowed deliberately: in a topology those
/// are world-level attachments (TopologyConfig), and leaving them on the
/// session template is exactly what `SessionConfig::validate()` rejects.
class TopologyBuilder : public SessionConfigurator<TopologyBuilder> {
 public:
  TopologyBuilder() {
    // Topology-mode defaults: the shared link produces contention for real
    // (no jitter stand-in), and per-session capture/auxiliary machinery
    // stays off — an N=10k world samples its bottleneck instead.
    cfg_.topology_attached = true;
    cfg_.bandwidth_jitter = 0.0;
    cfg_.auxiliary_traffic = false;
    cfg_.store_trace = false;
  }
  /// Start from an existing session template (e.g. a catalog scenario).
  explicit TopologyBuilder(SessionConfig base) : SessionConfigurator{std::move(base)} {
    cfg_.topology_attached = true;
    cfg_.bandwidth_jitter = 0.0;
    cfg_.auxiliary_traffic = false;
    cfg_.store_trace = false;
  }

  TopologyBuilder& sessions(std::size_t n) {
    topo_.sessions = n;
    return *this;
  }
  TopologyBuilder& workload(Workload w) {
    topo_.arrivals = w.arrivals;
    topo_.customize = std::move(w.customize);
    return *this;
  }
  TopologyBuilder& arrivals(ArrivalSchedule schedule) {
    topo_.arrivals = schedule;
    return *this;
  }
  TopologyBuilder& customize(std::function<void(std::size_t, sim::Rng&, SessionConfig&)> fn) {
    topo_.customize = std::move(fn);
    return *this;
  }
  TopologyBuilder& bottleneck(net::SharedBottleneck::Config c) {
    topo_.bottleneck = c;
    return *this;
  }
  TopologyBuilder& bottleneck_rate_bps(double bps) {
    topo_.bottleneck.rate_bps = bps;
    return *this;
  }
  TopologyBuilder& bottleneck_queue_bytes(std::uint64_t bytes) {
    topo_.bottleneck.queue_limit_bytes = bytes;
    return *this;
  }
  TopologyBuilder& bottleneck_loss(double rate, double burst_len = 1.0) {
    topo_.bottleneck.loss_rate = rate;
    topo_.bottleneck.loss_burst_len = burst_len;
    return *this;
  }
  /// Fault injection on the shared link (absolute world times) — the
  /// topology replacement for per-session `impairments`.
  TopologyBuilder& bottleneck_impairments(net::ImpairmentSchedule schedule) {
    topo_.bottleneck_impairments = std::move(schedule);
    return *this;
  }
  /// Competing non-video load injected straight into the bottleneck queue.
  TopologyBuilder& cross_traffic(net::CrossTraffic::Config c) {
    topo_.cross_traffic = c;
    return *this;
  }
  TopologyBuilder& horizon_s(double s) {
    topo_.horizon_s = s;
    return *this;
  }
  TopologyBuilder& sample_window_s(double s) {
    topo_.sample_window_s = s;
    return *this;
  }
  TopologyBuilder& warmup_s(double s) {
    topo_.warmup_s = s;
    return *this;
  }
  /// World seed — every arrival and session stream forks from this
  /// (shadows the mixin's per-session seed, which a topology overwrites).
  TopologyBuilder& seed(std::uint64_t s) {
    topo_.seed = s;
    return *this;
  }
  /// World digest (shadows the mixin's per-session digest).
  TopologyBuilder& digest(check::StateDigest* d) {
    topo_.digest = d;
    return *this;
  }
  /// World arena (shadows the mixin's per-session arena).
  TopologyBuilder& arena(sim::ArenaResource* a) {
    topo_.arena = a;
    return *this;
  }

  /// Validate and hand out the config. Throws std::invalid_argument on an
  /// impossible configuration — including private-path-only session knobs
  /// left on the template.
  [[nodiscard]] TopologyConfig build() const {
    TopologyConfig out = topo_;
    out.session = cfg_;
    out.validate();
    return out;
  }

  /// Validate and run in one step.
  [[nodiscard]] TopologyResult run() const { return run_topology(build()); }

 private:
  TopologyConfig topo_;
};

}  // namespace vstream::streaming
