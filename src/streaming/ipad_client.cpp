#include "streaming/ipad_client.hpp"

namespace vstream::streaming {

IpadYouTubeClient::IpadYouTubeClient(sim::Simulator& sim, FetchManager& fetches,
                                     const video::VideoMeta& video, Config config, ByteSink sink)
    : sim_{sim},
      fetches_{fetches},
      config_{config},
      sink_{std::move(sink)},
      video_bytes_{video.size_bytes()},
      block_bytes_{std::clamp(
          static_cast<std::uint64_t>(video.encoding_bps / 8.0 * config.block_playback_s),
          config.min_block_bytes, config.max_block_bytes)},
      cycle_timer_{sim, sim::Duration::seconds(1.0), [this] { on_cycle(); }} {
  const double steady_rate = config_.accumulation_ratio * video.encoding_bps;
  const double cycle_s = static_cast<double>(block_bytes_) * 8.0 / steady_rate;
  cycle_timer_.set_period(sim::Duration::seconds(cycle_s));
  // The paper's Video2 regime: low-rate videos stream over one persistent
  // connection with plain short cycles and no periodic re-buffering.
  single_connection_ = video.encoding_bps < config_.single_connection_below_bps;
}

void IpadYouTubeClient::start() { fetch_next_buffering_chunk(); }

void IpadYouTubeClient::stop() {
  stopped_ = true;
  cycle_timer_.stop();
  fetches_.stop();
}

void IpadYouTubeClient::fetch_next_buffering_chunk() {
  if (stopped_ || offset_ >= video_bytes_) return;
  const std::uint64_t want = std::min<std::uint64_t>(
      {config_.buffering_chunk_bytes, video_bytes_ - offset_,
       config_.initial_buffer_bytes > fetched_ ? config_.initial_buffer_bytes - fetched_
                                               : config_.buffering_chunk_bytes});
  const http::ByteRange range{offset_, offset_ + want - 1};
  offset_ += want;
  fetch_in_flight_ = true;
  const ByteSink sink = [this](std::uint64_t n) {
    fetched_ += n;
    if (sink_) sink_(n);
  };
  const auto done = [this] {
    fetch_in_flight_ = false;
    if (stopped_) return;
    if (fetched_ < config_.initial_buffer_bytes && offset_ < video_bytes_) {
      fetch_next_buffering_chunk();
    } else if (!steady_) {
      steady_ = true;
      cycle_timer_.start();  // paced block fetches from here on
    }
  };
  if (single_connection_) {
    fetches_.fetch_range_persistent(range, sink, done);
  } else {
    fetches_.fetch_range(range, sink, done);
  }
}

void IpadYouTubeClient::on_cycle() {
  if (stopped_) return;
  if (offset_ >= video_bytes_) {
    cycle_timer_.stop();
    return;
  }
  if (fetch_in_flight_) return;  // previous block still transferring
  // Periodic re-buffering: one large chunk every N cycles. The large chunk
  // covers several cycles' worth of content, so the paced schedule is
  // stretched accordingly (the next fetches are skipped by offset).
  if (skip_cycles_ > 0) {
    --skip_cycles_;
    return;  // content for this cycle was prefetched by the last re-buffer
  }
  ++cycle_count_;
  const bool rebuffer = !single_connection_ && config_.rebuffer_every_cycles > 0 &&
                        cycle_count_ % config_.rebuffer_every_cycles == 0;
  std::uint64_t quantum = block_bytes_;
  if (rebuffer) {
    quantum = std::max(config_.rebuffer_chunk_bytes, block_bytes_);
    // The big chunk banks several cycles' worth of content; skip that many
    // paced fetches so the average rate stays at ratio x encoding rate.
    skip_cycles_ = static_cast<std::uint32_t>(quantum / block_bytes_) - 1;
  }
  const std::uint64_t want = std::min(quantum, video_bytes_ - offset_);
  const http::ByteRange range{offset_, offset_ + want - 1};
  offset_ += want;
  fetch_in_flight_ = true;
  const ByteSink sink = [this](std::uint64_t n) {
    fetched_ += n;
    if (sink_) sink_(n);
  };
  const auto done = [this] { fetch_in_flight_ = false; };
  if (single_connection_) {
    fetches_.fetch_range_persistent(range, sink, done);
  } else {
    fetches_.fetch_range(range, sink, done);
  }
}

}  // namespace vstream::streaming
