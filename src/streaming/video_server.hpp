// Streaming-server pacing disciplines (Section 3 / 5.1).
//
// Two server behaviours cover everything the paper observed:
//   - Bulk: write the whole response as fast as TCP allows. Used for
//     Flash-HD, and for HTML5 video where the *client* does the throttling.
//   - PacedBlocks: push an initial burst worth `initial_burst_playback_s`
//     of playback, then one `block_bytes` block per cycle, the cycle sized
//     so the steady-state average rate is `accumulation_ratio` x encoding
//     rate. This is the YouTube Flash discipline (40 s burst, 64 kB
//     blocks, ratio 1.25).
#pragma once

#include <memory>
#include <vector>

#include "http/exchange.hpp"
#include "sim/periodic_timer.hpp"
#include "video/metadata.hpp"

namespace vstream::streaming {

struct ServerPacing {
  enum class Mode : std::uint8_t { kBulk, kPacedBlocks };
  Mode mode{Mode::kBulk};
  double initial_burst_playback_s{40.0};
  std::uint64_t block_bytes{64 * 1024};
  double accumulation_ratio{1.25};

  [[nodiscard]] static ServerPacing bulk() { return ServerPacing{}; }
  [[nodiscard]] static ServerPacing youtube_flash() {
    return ServerPacing{Mode::kPacedBlocks, 40.0, 64 * 1024, 1.25};
  }
};

/// Serves one video over one server endpoint. Handles plain and ranged
/// GETs; the paced discipline applies per response.
class VideoStreamServer {
 public:
  VideoStreamServer(sim::Simulator& sim, tcp::Endpoint& endpoint, video::VideoMeta video,
                    ServerPacing pacing);

  [[nodiscard]] const video::VideoMeta& video() const { return video_; }
  [[nodiscard]] std::uint64_t requests_served() const { return http_->requests_served(); }

  /// Stop pacing timers (e.g. viewer interrupted).
  void stop();

 private:
  void handle(const http::HttpRequest& request, const http::HttpServer::MakeResponder& make);
  void probe_block(std::uint64_t bytes, bool initial_burst);

  sim::Simulator& sim_;
  std::uint64_t conn_id_{0};
  video::VideoMeta video_;
  ServerPacing pacing_;
  std::unique_ptr<http::HttpServer> http_;
  std::vector<std::unique_ptr<sim::PeriodicTimer>> pacers_;
  std::vector<std::shared_ptr<http::Responder>> active_;
};

}  // namespace vstream::streaming
