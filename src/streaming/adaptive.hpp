// Adaptive bitrate controller (extension of the paper's Netflix model).
//
// The paper observes that the Netflix encoding rate "depends on the
// end-to-end available bandwidth" (citing Akhshabi et al.) but models a
// fixed selection. This controller adds the adaptation loop: per-block
// throughput measurements drive switches along the encoding ladder, with a
// buffer-aware hysteresis so transient dips do not cause oscillation.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace vstream::streaming {

class AdaptiveRateController {
 public:
  struct Config {
    std::vector<double> ladder_bps;  ///< ascending encoding rates
    /// Use at most this fraction of the measured throughput.
    double safety_factor{0.8};
    /// Only shift up when at least this much content is buffered.
    double upshift_buffer_s{20.0};
    /// Shift down as soon as the buffer falls below this.
    double downshift_buffer_s{8.0};
    /// EWMA weight of the newest throughput sample.
    double ewma_alpha{0.3};
  };

  explicit AdaptiveRateController(Config config);

  /// Initialise from an a-priori bandwidth estimate (e.g. the buffering
  /// phase throughput); picks the highest safe ladder rate.
  void seed(double bandwidth_estimate_bps);

  /// Feed one completed block: its size, transfer duration, and the
  /// player's current buffer level. Returns true if the rate switched.
  bool on_block(double bytes, double transfer_s, double buffer_s);

  /// A transport-level fault (request timeout / connection re-establishment)
  /// is stronger evidence of trouble than any throughput sample: step one
  /// rung down immediately. Returns true if the rate switched.
  bool on_fault();

  [[nodiscard]] double current_rate_bps() const { return config_.ladder_bps[index_]; }
  [[nodiscard]] std::size_t current_index() const { return index_; }
  [[nodiscard]] std::size_t switch_count() const { return switches_; }
  [[nodiscard]] double throughput_estimate_bps() const { return ewma_bps_; }

 private:
  [[nodiscard]] std::size_t best_index_for(double bandwidth_bps) const;

  Config config_;
  std::size_t index_{0};
  double ewma_bps_{0.0};
  std::size_t switches_{0};
};

}  // namespace vstream::streaming
