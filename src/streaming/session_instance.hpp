// One streaming session's application machinery, decoupled from world
// ownership.
//
// `SessionInstance` owns everything Table 1 wires *above* the network for
// one (service, container, application) combination: the server pacing
// discipline, the client read policy, the fetch manager, the player, and
// the optional auxiliary traffic. It deliberately owns neither the
// simulator nor the path: `run_session` gives each instance a private
// world and a capture recorder, while `run_topology` (streaming/topology.hpp)
// places many instances into one world, each on its own access leg behind
// a shared bottleneck.
//
// Determinism contract: the instance forks "session-knobs", "auxiliary"
// (only with auxiliary traffic enabled) and — in `finalize()` —
// "rate-estimate" from the session stream it is given, in exactly the
// order `run_session` historically drew them, so the single-session
// refactor is draw-for-draw identical to the pre-instance code.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "analysis/report.hpp"
#include "sim/rng.hpp"
#include "streaming/clients.hpp"
#include "streaming/player.hpp"
#include "streaming/session.hpp"

namespace vstream::tcp {
class Connection;
class Fabric;
}  // namespace vstream::tcp

namespace vstream::streaming {

struct ServerPacing;
class VideoStreamServer;
class GreedyClient;
class PullThrottleClient;
class FetchManager;
class IpadYouTubeClient;
class NetflixClient;
class AuxiliaryTraffic;

/// What one finished session contributes to analysis: player statistics,
/// recovery accounting, transfer totals, and the encoding-rate estimate.
/// The capture-side fields of `SessionResult` (trace, reports, metrics)
/// stay with `run_session` — a topology world samples its bottleneck
/// instead of recording packets.
struct SessionOutcome {
  PlayerStats player;
  analysis::ResilienceStats resilience;
  std::uint64_t bytes_downloaded{0};
  std::size_t connections{0};  ///< all connections on the session's fabric
  double encoding_bps_true{0.0};
  double encoding_bps_estimated{0.0};
  double interrupted_at_s{0.0};  ///< 0 when not interrupted
  double started_at_s{0.0};      ///< sim time the instance was created
  double first_byte_s{-1.0};     ///< first client read; <0 = no bytes
  double last_byte_s{-1.0};      ///< last client read

  /// Application goodput over the active transfer — the per-session G the
  /// aggregate model's variance term wants (model/aggregate.hpp). Zero
  /// when the transfer was too short to measure.
  [[nodiscard]] double goodput_bps() const {
    if (first_byte_s < 0.0 || last_byte_s <= first_byte_s) return 0.0;
    return 8.0 * static_cast<double>(bytes_downloaded) / (last_byte_s - first_byte_s);
  }
};

class SessionInstance {
 public:
  /// Wire the session into `fabric`'s path. `rng` is the session's root
  /// stream, taken by value after any world-level draws (the bandwidth
  /// jitter fork); nothing else may draw from the original afterwards.
  SessionInstance(sim::Simulator& sim, tcp::Fabric& fabric, const SessionConfig& config,
                  sim::Rng rng);
  ~SessionInstance();

  SessionInstance(const SessionInstance&) = delete;
  SessionInstance& operator=(const SessionInstance&) = delete;

  /// Stop every download-side component (server pacing, client reads,
  /// fetch retries). The player's interruption handler calls this;
  /// idempotent.
  void stop_download();

  /// Stop the auxiliary-host traffic (no-op when disabled).
  void stop_auxiliary();

  /// Topology mode: notified once when the session quiesces — playback
  /// finished naturally or the viewer interrupted — so a long-lived world
  /// can retire the session. `run_session` leaves this unset; its capture
  /// cutoff ends the world instead, and wiring the finish path there would
  /// change the historical event count.
  void set_on_quiesce(std::function<void()> fn);

  /// Topology mode: observe every video byte as the client application
  /// reads it — the TCP-deduped delivery stream (retransmits and
  /// queue-dropped bytes excluded by the transport), which is what the
  /// aggregate R(t) sampler wants. Set right after construction, before
  /// the world runs. `run_session` leaves this unset.
  void set_byte_tap(std::function<void(std::uint64_t)> tap) { byte_tap_ = std::move(tap); }

  [[nodiscard]] Player& player() { return *player_; }
  [[nodiscard]] const Player& player() const { return *player_; }
  [[nodiscard]] std::uint64_t bytes_downloaded() const;

  /// Gather the outcome. Forks "rate-estimate" as the session stream's
  /// last draw; call exactly once, after the run.
  [[nodiscard]] SessionOutcome finalize();

 private:
  void wire_combination();
  void open_single_connection(std::uint64_t client_recv_bytes, const ServerPacing& pacing);
  [[nodiscard]] ByteSink make_sink();

  sim::Simulator& sim_;
  tcp::Fabric& fabric_;
  SessionConfig cfg_;
  sim::Rng rng_;

  // Deferred player wiring: clients need a sink before the player exists
  // in some flows (Netflix selects its rate first).
  Player* sink_player_{nullptr};
  double first_byte_s_{-1.0};
  double last_byte_s_{-1.0};
  double started_at_s_{0.0};
  double player_rate_bps_{0.0};

  // Owned per-combination machinery. Declaration order mirrors the old
  // run_session locals so destruction order is unchanged.
  std::unique_ptr<VideoStreamServer> server_;
  std::unique_ptr<GreedyClient> greedy_;
  std::unique_ptr<PullThrottleClient> pull_;
  std::unique_ptr<FetchManager> fetches_;
  std::unique_ptr<IpadYouTubeClient> ipad_;
  std::unique_ptr<NetflixClient> netflix_;
  std::unique_ptr<AuxiliaryTraffic> auxiliary_;
  tcp::Connection* conn_{nullptr};
  std::unique_ptr<Player> player_;

  std::function<void()> on_quiesce_;
  std::function<void(std::uint64_t)> byte_tap_;
  bool quiesced_{false};
};

}  // namespace vstream::streaming
