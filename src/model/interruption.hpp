// User-interruption model (Section 6.2): unused bytes and wasted bandwidth.
//
// The viewer abandons video n after watching a fraction beta_n of its
// duration L_n. With buffering amount B_n = e_n B'_n (B'_n seconds of
// playback) and steady-state download rate G_n = k_n e_n:
//
//   download still in progress at the interruption iff
//       e L > B + G tau  >=  e tau                          (5)/(6)
//   equivalently  B' < L (1 - k beta)                       (7)
//
//   unused bytes  = min(B + G tau, e L) - e tau             (8)
//   E[R'(t)]      = lambda E[e] E[min(B' + k beta L, L) - beta L]   (9)
#pragma once

#include <cstdint>
#include <functional>

#include "sim/rng.hpp"

namespace vstream::model {

struct InterruptionParams {
  double encoding_bps{1e6};        ///< e
  double duration_s{300.0};        ///< L
  double buffered_playback_s{40.0};///< B' (B = e B' / 8 bytes)
  double accumulation_ratio{1.25}; ///< k (G = k e)
  double beta{0.2};                ///< fraction watched before interruption
};

/// Left side of Eq (7): true when the whole video is downloaded *before*
/// the viewer interrupts (the bad case for unused bytes).
[[nodiscard]] bool downloads_whole_video_before_interruption(const InterruptionParams& p);

/// Critical duration from Eq (7) with equality: videos shorter than this
/// are fully downloaded before beta of them has been watched. The paper's
/// worked example (B'=40 s, k=1.25, beta=0.2) gives 53.3 s.
[[nodiscard]] double critical_duration_s(double buffered_playback_s, double accumulation_ratio,
                                         double beta);

/// Eq (8) numerator for one video: bytes downloaded but never watched.
[[nodiscard]] double unused_bytes(const InterruptionParams& p);

/// Eq (9) with deterministic parameters: average wasted bandwidth (bits/s)
/// across a Poisson population at rate lambda.
[[nodiscard]] double wasted_bandwidth_bps(double lambda_per_s, const InterruptionParams& p);

/// Eq (9) with distributions: Monte-Carlo expectation over (e, L, beta).
struct WasteMonteCarloConfig {
  double lambda_per_s{1.0};
  std::size_t draws{100000};
  std::uint64_t seed{7};
  double buffered_playback_s{40.0};
  double accumulation_ratio{1.25};
  std::function<double(sim::Rng&)> draw_encoding_bps;
  std::function<double(sim::Rng&)> draw_duration_s;
  std::function<double(sim::Rng&)> draw_beta;
};
struct WasteEstimate {
  double wasted_bps{0.0};          ///< E[R'(t)]
  double useful_bps{0.0};          ///< lambda E[e beta L]: bytes actually watched
  double waste_fraction{0.0};      ///< wasted / (wasted + useful)
};
[[nodiscard]] WasteEstimate estimate_wasted_bandwidth(const WasteMonteCarloConfig& config);

}  // namespace vstream::model
