// Aggregate video-streaming traffic model (Section 6.1).
//
// Streaming sessions arrive as a homogeneous Poisson process with rate
// lambda; video n has encoding rate e_n, duration L_n (size S_n = e_n L_n)
// and downloads at rate G_n while active. Following Barakat et al. (the
// paper's Eq. 1-4):
//
//   E[R(t)] = lambda E[S_n]            = lambda E[e] E[L]          (3)
//   Var R   = lambda E[int X^2]        = lambda E[e] E[L] E[G]     (4)
//
// and both are *independent of the streaming strategy* when downloads are
// never interrupted — ON-OFF throttling stretches the transfer but leaves
// the integral of X^2 unchanged. The Monte-Carlo engine below superposes
// explicit per-flow rate functions for each strategy so the closed forms
// (and the strategy-independence claim) can be validated numerically.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/rng.hpp"

namespace vstream::model {

/// Closed-form inputs (independence of e, L, G assumed, as in the paper).
struct AggregateParams {
  double lambda_per_s{1.0};          ///< session arrival rate
  double mean_encoding_bps{1e6};     ///< E[e]
  double mean_duration_s{300.0};     ///< E[L]
  double mean_download_rate_bps{5e6};///< E[G]
};

/// Eq (3): mean aggregate rate in bits/s.
[[nodiscard]] double mean_aggregate_rate_bps(const AggregateParams& p);

/// Eq (4): variance of the aggregate rate in (bits/s)^2.
[[nodiscard]] double variance_aggregate_rate(const AggregateParams& p);

/// Dimensioning rule from Section 6.1: E[R] + alpha * sqrt(Var R).
[[nodiscard]] double dimension_link_bps(const AggregateParams& p, double alpha);

/// Probability that the aggregate rate exceeds capacity C, under the
/// Gaussian approximation of the superposed traffic (valid for many
/// concurrent flows, the regime the dimensioning rule targets).
[[nodiscard]] double overload_probability(const AggregateParams& p, double capacity_bps);

/// Inverse of the above: the capacity needed so the aggregate exceeds it
/// with probability at most `violation_probability` (e.g. 0.01).
[[nodiscard]] double capacity_for_violation(const AggregateParams& p,
                                            double violation_probability);

/// Strategy shapes for the per-flow rate function.
enum class ModelStrategy : std::uint8_t { kNoOnOff, kShortOnOff, kLongOnOff };

struct MonteCarloConfig {
  double lambda_per_s{1.0};
  double horizon_s{2000.0};   ///< observation window after warm-up
  double sample_dt_s{1.0};    ///< grid step for sampling R(t)
  std::uint64_t seed{1};
  ModelStrategy strategy{ModelStrategy::kNoOnOff};

  /// Per-video draws. Defaults model a fixed-rate population.
  std::function<double(sim::Rng&)> draw_encoding_bps;
  std::function<double(sim::Rng&)> draw_duration_s;
  std::function<double(sim::Rng&)> draw_download_rate_bps;  ///< G during ON

  /// ON-OFF strategies only: steady-state rate = ratio x encoding rate and
  /// buffering burst worth this much playback.
  double accumulation_ratio{1.25};
  double buffering_playback_s{40.0};
  std::uint64_t block_bytes{64 * 1024};  ///< short: 64 kB; long: > 2.5 MB
};

struct MonteCarloResult {
  double mean_bps{0.0};
  double variance{0.0};
  std::size_t samples{0};
  std::size_t flows{0};
  double mean_active_flows{0.0};
};

/// Superpose Poisson-arriving flows and sample the aggregate rate R(t) on a
/// grid over [0, horizon). Flows arriving before the window that are still
/// active contribute (steady state), via a warm-up interval.
[[nodiscard]] MonteCarloResult run_aggregate_monte_carlo(const MonteCarloConfig& config);

}  // namespace vstream::model
