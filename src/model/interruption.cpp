#include "model/interruption.hpp"

#include <algorithm>
#include <stdexcept>

namespace vstream::model {
namespace {

void validate(const InterruptionParams& p) {
  if (p.encoding_bps <= 0.0) throw std::invalid_argument{"interruption: bad encoding rate"};
  if (p.duration_s <= 0.0) throw std::invalid_argument{"interruption: bad duration"};
  if (p.buffered_playback_s < 0.0) throw std::invalid_argument{"interruption: negative B'"};
  if (p.accumulation_ratio < 1.0) {
    throw std::invalid_argument{"interruption: accumulation ratio must be >= 1"};
  }
  if (p.beta <= 0.0 || p.beta >= 1.0) throw std::invalid_argument{"interruption: beta in (0,1)"};
}

}  // namespace

bool downloads_whole_video_before_interruption(const InterruptionParams& p) {
  validate(p);
  // Negation of Eq (7): B' >= L (1 - k beta) means the download finishes
  // before the viewer reaches beta L.
  return p.buffered_playback_s >= p.duration_s * (1.0 - p.accumulation_ratio * p.beta);
}

double critical_duration_s(double buffered_playback_s, double accumulation_ratio, double beta) {
  const double denom = 1.0 - accumulation_ratio * beta;
  if (denom <= 0.0) {
    // k beta >= 1: the download outruns every viewer; every video is fully
    // downloaded regardless of duration.
    return std::numeric_limits<double>::infinity();
  }
  return buffered_playback_s / denom;
}

double unused_bytes(const InterruptionParams& p) {
  validate(p);
  const double tau = p.beta * p.duration_s;                    // watch time
  const double bytes_per_s = p.encoding_bps / 8.0;
  const double buffered = p.buffered_playback_s * bytes_per_s; // B, bytes
  const double rate = p.accumulation_ratio * bytes_per_s;      // G, bytes/s
  const double size = p.duration_s * bytes_per_s;              // e L, bytes
  const double downloaded = std::min(buffered + rate * tau, size);
  const double watched = bytes_per_s * tau;
  return std::max(0.0, downloaded - watched);
}

double wasted_bandwidth_bps(double lambda_per_s, const InterruptionParams& p) {
  if (lambda_per_s <= 0.0) throw std::invalid_argument{"wasted_bandwidth_bps: bad lambda"};
  return lambda_per_s * unused_bytes(p) * 8.0;
}

WasteEstimate estimate_wasted_bandwidth(const WasteMonteCarloConfig& config) {
  if (config.draws == 0) throw std::invalid_argument{"estimate_wasted_bandwidth: zero draws"};
  sim::Rng rng{config.seed};
  const auto draw_e = config.draw_encoding_bps
                          ? config.draw_encoding_bps
                          : [](sim::Rng&) { return 1e6; };
  const auto draw_l = config.draw_duration_s ? config.draw_duration_s
                                             : [](sim::Rng&) { return 300.0; };
  const auto draw_b = config.draw_beta ? config.draw_beta : [](sim::Rng&) { return 0.2; };

  double waste_sum = 0.0;
  double useful_sum = 0.0;
  for (std::size_t i = 0; i < config.draws; ++i) {
    InterruptionParams p;
    p.encoding_bps = draw_e(rng);
    p.duration_s = draw_l(rng);
    p.buffered_playback_s = config.buffered_playback_s;
    p.accumulation_ratio = config.accumulation_ratio;
    p.beta = std::clamp(draw_b(rng), 1e-6, 1.0 - 1e-6);
    waste_sum += unused_bytes(p) * 8.0;
    useful_sum += p.encoding_bps * p.beta * p.duration_s;
  }
  WasteEstimate est;
  const auto n = static_cast<double>(config.draws);
  est.wasted_bps = config.lambda_per_s * waste_sum / n;
  est.useful_bps = config.lambda_per_s * useful_sum / n;
  const double total = est.wasted_bps + est.useful_bps;
  est.waste_fraction = total > 0.0 ? est.wasted_bps / total : 0.0;
  return est;
}

}  // namespace vstream::model
