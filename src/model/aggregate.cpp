#include "model/aggregate.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"

namespace vstream::model {

double mean_aggregate_rate_bps(const AggregateParams& p) {
  return p.lambda_per_s * p.mean_encoding_bps * p.mean_duration_s;
}

double variance_aggregate_rate(const AggregateParams& p) {
  return p.lambda_per_s * p.mean_encoding_bps * p.mean_duration_s * p.mean_download_rate_bps;
}

double dimension_link_bps(const AggregateParams& p, double alpha) {
  if (alpha < 0.0) throw std::invalid_argument{"dimension_link_bps: alpha must be >= 0"};
  return mean_aggregate_rate_bps(p) + alpha * std::sqrt(variance_aggregate_rate(p));
}

namespace {

// Standard normal tail Q(x) = P(Z > x) and its inverse, via erfc.
double normal_tail(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double inverse_normal_tail(double q) {
  // Bisection on the monotone tail; plenty accurate for dimensioning.
  double lo = -10.0;
  double hi = 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (normal_tail(mid) > q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double overload_probability(const AggregateParams& p, double capacity_bps) {
  const double mean = mean_aggregate_rate_bps(p);
  const double sd = std::sqrt(variance_aggregate_rate(p));
  if (sd <= 0.0) return capacity_bps >= mean ? 0.0 : 1.0;
  return normal_tail((capacity_bps - mean) / sd);
}

double capacity_for_violation(const AggregateParams& p, double violation_probability) {
  if (violation_probability <= 0.0 || violation_probability >= 1.0) {
    throw std::invalid_argument{"capacity_for_violation: probability in (0,1)"};
  }
  const double alpha = inverse_normal_tail(violation_probability);
  return mean_aggregate_rate_bps(p) + alpha * std::sqrt(variance_aggregate_rate(p));
}

namespace {

/// One flow's download-rate function X(t - T): piecewise per strategy.
struct Flow {
  double arrival_s{0.0};
  double encoding_bps{0.0};
  double size_bits{0.0};
  double on_rate_bps{0.0};  ///< G

  // ON-OFF parameters (unused for kNoOnOff).
  double buffering_bits{0.0};
  double cycle_s{0.0};
  double on_per_cycle_s{0.0};
  double block_bits{0.0};

  ModelStrategy strategy{ModelStrategy::kNoOnOff};

  [[nodiscard]] double duration_s() const {
    if (strategy == ModelStrategy::kNoOnOff) return size_bits / on_rate_bps;
    const double buffering_s = buffering_bits / on_rate_bps;
    const double steady_bits = size_bits > buffering_bits ? size_bits - buffering_bits : 0.0;
    const double cycles = block_bits > 0.0 ? steady_bits / block_bits : 0.0;
    return buffering_s + cycles * cycle_s;
  }

  /// Download rate at absolute time t.
  [[nodiscard]] double rate_at(double t) const {
    const double u = t - arrival_s;
    if (u < 0.0) return 0.0;
    if (strategy == ModelStrategy::kNoOnOff) {
      return u < size_bits / on_rate_bps ? on_rate_bps : 0.0;
    }
    const double buffering_s = buffering_bits / on_rate_bps;
    if (u < buffering_s) return on_rate_bps;
    const double steady_bits = size_bits > buffering_bits ? size_bits - buffering_bits : 0.0;
    const double cycles = block_bits > 0.0 ? steady_bits / block_bits : 0.0;
    const double steady_u = u - buffering_s;
    if (steady_u >= cycles * cycle_s) return 0.0;
    const double phase = std::fmod(steady_u, cycle_s);
    // Partial last cycle: the tail block may be shorter; treating it as a
    // full block is a negligible end effect for long videos.
    return phase < on_per_cycle_s ? on_rate_bps : 0.0;
  }
};

}  // namespace

MonteCarloResult run_aggregate_monte_carlo(const MonteCarloConfig& config) {
  if (config.lambda_per_s <= 0.0 || config.horizon_s <= 0.0 || config.sample_dt_s <= 0.0) {
    throw std::invalid_argument{"run_aggregate_monte_carlo: bad rate/horizon/step"};
  }
  sim::Rng rng{config.seed};

  const auto draw_e = config.draw_encoding_bps
                          ? config.draw_encoding_bps
                          : [](sim::Rng&) { return 1e6; };
  const auto draw_l = config.draw_duration_s ? config.draw_duration_s
                                             : [](sim::Rng&) { return 300.0; };
  const auto draw_g = config.draw_download_rate_bps
                          ? config.draw_download_rate_bps
                          : [](sim::Rng&) { return 5e6; };

  // Warm-up long enough that flows arriving before t=0 and still active at
  // t=0 are represented: generously, several mean throttled durations.
  std::vector<Flow> flows;
  double warmup_s = 0.0;
  {
    // Estimate an upper duration bound from a pilot of draws.
    sim::Rng pilot = rng.fork("pilot");
    double worst = 0.0;
    for (int i = 0; i < 256; ++i) {
      const double e = draw_e(pilot);
      const double l = draw_l(pilot);
      const double throttled = l / std::max(0.1, config.accumulation_ratio) + l;
      (void)e;
      worst = std::max(worst, throttled);
    }
    warmup_s = worst;
  }

  double t = -warmup_s;
  while (true) {
    t += rng.exponential(config.lambda_per_s);
    if (t >= config.horizon_s) break;
    Flow f;
    f.arrival_s = t;
    f.strategy = config.strategy;
    f.encoding_bps = draw_e(rng);
    const double duration = draw_l(rng);
    f.size_bits = f.encoding_bps * duration;
    f.on_rate_bps = std::max(draw_g(rng), f.encoding_bps * config.accumulation_ratio);
    if (config.strategy != ModelStrategy::kNoOnOff) {
      f.buffering_bits = std::min(config.buffering_playback_s * f.encoding_bps, f.size_bits);
      f.block_bits = static_cast<double>(config.block_bytes) * 8.0;
      const double steady_rate = config.accumulation_ratio * f.encoding_bps;
      f.cycle_s = f.block_bits / steady_rate;
      f.on_per_cycle_s = f.block_bits / f.on_rate_bps;
    }
    flows.push_back(f);
  }

  stats::OnlineStats acc;
  stats::OnlineStats active_acc;
  for (double s = 0.0; s < config.horizon_s; s += config.sample_dt_s) {
    double rate = 0.0;
    std::size_t active = 0;
    for (const Flow& f : flows) {
      if (s < f.arrival_s || s > f.arrival_s + f.duration_s()) continue;
      const double r = f.rate_at(s);
      rate += r;
      if (r > 0.0) ++active;
    }
    acc.add(rate);
    active_acc.add(static_cast<double>(active));
  }

  MonteCarloResult result;
  result.mean_bps = acc.mean();
  result.variance = acc.variance();
  result.samples = acc.count();
  result.flows = flows.size();
  result.mean_active_flows = active_acc.mean();
  return result;
}

}  // namespace vstream::model
