#include "model/migration.hpp"

#include <cmath>
#include <stdexcept>

#include "video/viewing.hpp"

namespace vstream::model {

StrategyProfile StrategyProfile::youtube_flash(double share) {
  return StrategyProfile{"Flash (Short, server-paced)", share, 40.0, 1.25, 1.0e6, 300.0};
}

StrategyProfile StrategyProfile::html5_ie(double share) {
  // IE buffers 10-15 MB regardless of the rate; ~12.5 MB at 1 Mbps is
  // ~100 s of playback.
  return StrategyProfile{"HTML5/IE (Short, client-pull)", share, 100.0, 1.06, 1.0e6, 300.0};
}

StrategyProfile StrategyProfile::html5_chrome(double share) {
  return StrategyProfile{"HTML5/Chrome (Long)", share, 100.0, 1.34, 1.0e6, 300.0};
}

StrategyProfile StrategyProfile::mobile_android(double share) {
  // Android buffers 4-8 MB (~48 s at 1 Mbps) with ratio ~1.24.
  return StrategyProfile{"Mobile/Android (Long)", share, 48.0, 1.24, 1.0e6, 300.0};
}

StrategyProfile StrategyProfile::bulk_hd(double share) {
  // No ON-OFF: the whole video is "buffered"; B' = L, and the rate is HD.
  return StrategyProfile{"Flash HD (No ON-OFF, bulk)", share, 300.0, 1.25, 3.0e6, 300.0};
}

double MigrationScenario::total_share() const {
  double s = 0.0;
  for (const auto& p : mix) s += p.share;
  return s;
}

ScenarioImpact evaluate_scenario(const MigrationScenario& scenario, std::size_t draws,
                                 std::uint64_t seed) {
  if (scenario.mix.empty()) throw std::invalid_argument{"evaluate_scenario: empty mix"};
  const double total = scenario.total_share();
  if (total <= 0.0) throw std::invalid_argument{"evaluate_scenario: zero total share"};

  ScenarioImpact impact;
  double variance = 0.0;
  for (const auto& profile : scenario.mix) {
    const double lambda_i = scenario.lambda_per_s * profile.share / total;
    AggregateParams p;
    p.lambda_per_s = lambda_i;
    p.mean_encoding_bps = profile.mean_encoding_bps;
    p.mean_duration_s = profile.mean_duration_s;
    // G is the download rate *during ON periods*, i.e. the end-to-end
    // available bandwidth — the same for every strategy (Section 6.1's
    // overprovisioning assumption). A typical 20 Mbps access link.
    p.mean_download_rate_bps = 20e6;
    impact.mean_rate_bps += mean_aggregate_rate_bps(p);
    variance += variance_aggregate_rate(p);  // independent segments add

    WasteMonteCarloConfig waste;
    waste.lambda_per_s = lambda_i;
    waste.draws = draws;
    waste.seed = seed + static_cast<std::uint64_t>(profile.share * 1000.0);
    waste.buffered_playback_s = profile.buffered_playback_s;
    waste.accumulation_ratio = profile.accumulation_ratio;
    const double e = profile.mean_encoding_bps;
    const double l = profile.mean_duration_s;
    waste.draw_encoding_bps = [e](sim::Rng& r) { return r.uniform(0.5 * e, 1.5 * e); };
    waste.draw_duration_s = [l](sim::Rng& r) {
      return std::clamp(r.lognormal(std::log(l * 0.7), 0.8), 30.0, 3600.0);
    };
    waste.draw_beta = [l](sim::Rng& r) {
      static const video::ViewingModel kViewing;
      return std::min(0.999, kViewing.draw_watch_fraction(r, l));
    };
    const auto est = estimate_wasted_bandwidth(waste);
    impact.wasted_bps += est.wasted_bps;
  }
  impact.rate_sd_bps = std::sqrt(variance);
  const double denom = impact.mean_rate_bps;
  impact.waste_fraction = denom > 0.0 ? impact.wasted_bps / denom : 0.0;
  return impact;
}

std::vector<MigrationScenario> paper_conclusion_scenarios(double lambda_per_s) {
  std::vector<MigrationScenario> scenarios;

  MigrationScenario status_quo;
  status_quo.name = "2011 status quo (Flash-dominant)";
  status_quo.lambda_per_s = lambda_per_s;
  status_quo.mix = {StrategyProfile::youtube_flash(0.80), StrategyProfile::html5_ie(0.10),
                    StrategyProfile::mobile_android(0.10)};
  scenarios.push_back(std::move(status_quo));

  MigrationScenario html5;
  html5.name = "HTML5 migration (Flash retired)";
  html5.lambda_per_s = lambda_per_s;
  html5.mix = {StrategyProfile::html5_ie(0.45), StrategyProfile::html5_chrome(0.35),
               StrategyProfile::mobile_android(0.20)};
  scenarios.push_back(std::move(html5));

  MigrationScenario mobile;
  mobile.name = "mobile-heavy future";
  mobile.lambda_per_s = lambda_per_s;
  mobile.mix = {StrategyProfile::html5_ie(0.20), StrategyProfile::html5_chrome(0.20),
                StrategyProfile::mobile_android(0.60)};
  scenarios.push_back(std::move(mobile));

  MigrationScenario hd;
  hd.name = "HD migration (3x encoding rates)";
  hd.lambda_per_s = lambda_per_s;
  hd.mix = {StrategyProfile::bulk_hd(0.50), StrategyProfile::youtube_flash(0.50)};
  scenarios.push_back(std::move(hd));

  return scenarios;
}

}  // namespace vstream::model
