// Strategy-migration scenarios (the paper's conclusion).
//
// "A sudden change of application or container in a large population might
// have a significant impact on the network traffic ... the most likely
// being a change from Flash to HTML5 along with an increase in the use of
// mobile devices."
//
// A scenario is a mix of strategy profiles, each with its buffering policy
// (B', k) and encoding-rate population. Without interruptions the mean and
// variance of the aggregate rate are strategy-independent (Section 6.1), so
// the *migration impact* shows up in (a) the wasted bandwidth under viewer
// interruptions and (b) the rate/variance shift when the migration also
// changes encoding rates (e.g. HD). This module quantifies both.
#pragma once

#include <string>
#include <vector>

#include "model/aggregate.hpp"
#include "model/interruption.hpp"

namespace vstream::model {

/// One population segment using a common strategy/policy.
struct StrategyProfile {
  std::string name;
  double share{1.0};               ///< fraction of sessions [0,1]
  double buffered_playback_s{40.0};///< B'
  double accumulation_ratio{1.25}; ///< k
  double mean_encoding_bps{1e6};
  double mean_duration_s{300.0};

  /// The 2011 client profiles, as measured in Section 5.
  [[nodiscard]] static StrategyProfile youtube_flash(double share);
  [[nodiscard]] static StrategyProfile html5_ie(double share);
  [[nodiscard]] static StrategyProfile html5_chrome(double share);
  [[nodiscard]] static StrategyProfile mobile_android(double share);
  [[nodiscard]] static StrategyProfile bulk_hd(double share);
};

struct MigrationScenario {
  std::string name;
  double lambda_per_s{1.0};
  std::vector<StrategyProfile> mix;  ///< shares should sum to ~1

  [[nodiscard]] double total_share() const;
};

struct ScenarioImpact {
  double mean_rate_bps{0.0};      ///< aggregate E[R], Eq (3) over the mix
  double rate_sd_bps{0.0};        ///< sqrt of Eq (4) over the mix
  double wasted_bps{0.0};         ///< Eq (9) with the Finamore viewing pattern
  double waste_fraction{0.0};
};

/// Evaluate a scenario. `draws` controls the interruption Monte Carlo.
[[nodiscard]] ScenarioImpact evaluate_scenario(const MigrationScenario& scenario,
                                               std::size_t draws = 50000,
                                               std::uint64_t seed = 17);

/// The paper's motivating what-if: 2011 status quo (Flash-dominant) vs an
/// HTML5 migration vs a mobile-heavy future, at the same arrival rate.
[[nodiscard]] std::vector<MigrationScenario> paper_conclusion_scenarios(double lambda_per_s);

}  // namespace vstream::model
